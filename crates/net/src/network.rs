//! The simulated network itself.

use crate::message::{Batch, BATCH_TAG};
use crate::queue::DelayQueue;
use crate::shard::{pair_key, PairMap, SegmentSlots, Striped};
use crate::{
    EndpointStatsSnapshot, Envelope, LinkClass, NetStats, NetStatsSnapshot, NodeId, Payload,
    SimClock, Topology,
};
use crossbeam::channel::{Receiver, Sender};
use jsym_obs::{bounds, Counter, ObsRegistry};
use parking_lot::RwLock;
use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Why a send was rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SendError {
    /// Destination node was never registered or has unregistered.
    UnknownDestination(NodeId),
    /// Destination node has been killed by failure injection.
    DeadDestination(NodeId),
    /// Source node has been killed by failure injection.
    DeadSource(NodeId),
    /// The pair is currently partitioned.
    Partitioned(NodeId, NodeId),
}

impl fmt::Display for SendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SendError::UnknownDestination(n) => write!(f, "unknown destination {n}"),
            SendError::DeadDestination(n) => write!(f, "destination {n} is dead"),
            SendError::DeadSource(n) => write!(f, "source {n} is dead"),
            SendError::Partitioned(a, b) => write!(f, "{a} and {b} are partitioned"),
        }
    }
}

impl std::error::Error for SendError {}

/// Per-node delivery callback for node-local traffic (see
/// [`Network::set_local_hook`]).
pub type LocalHook = Arc<dyn Fn(Envelope) + Send + Sync>;

/// Tunables for a [`Network`].
#[derive(Clone, Debug)]
pub struct NetworkConfig {
    /// Per-endpoint mailbox capacity. Sends beyond it block the delivery
    /// thread, providing crude back-pressure; the default is large enough
    /// that experiments never hit it.
    pub mailbox_capacity: usize,
    /// Link classes modeled as a *shared medium*: at most one transmission
    /// at a time across the whole segment, like the hubbed 10 Mbit/s
    /// Ethernet of the paper's testbed (as opposed to switched per-pair
    /// capacity). Empty by default — per-pair links only.
    pub shared_segments: Vec<crate::LinkClass>,
    /// Number of delivery-plane shards (threads + heaps), keyed by
    /// destination node. Clamped to at least 1.
    pub delivery_shards: usize,
    /// Deliver node-local (`src == dst`) messages inline on the caller's
    /// thread when their deadline is imminent, skipping the delay-queue heap
    /// and the cross-thread hand-off. Requires a [`Network::set_local_hook`]
    /// for the node; nodes without a hook always use the queued path.
    pub loopback_fast_path: bool,
    /// Coalesce same-`(src, dst)` messages into [`Batch`]es with one modeled
    /// wire charge per batch (`None` = per-message charging, the default).
    /// Node-local traffic is never batched — the loopback plane keeps its
    /// own fast path.
    pub batching: Option<BatchConfig>,
    /// Route *all* deliveries (not just node-local ones) through the
    /// destination's [`Network::set_local_hook`] instead of its mailbox
    /// channel. The executor runtime sets this: with no per-node receiver
    /// threads, the hook is the only dispatcher, and it must be installed
    /// *before* the node's endpoint registers so nothing lands in the unread
    /// mailbox. Nodes without a hook fall back to the mailbox as before.
    pub deliver_via_hook: bool,
    /// Lock stripes for the per-pair hot-path state (`pair_last`, and the
    /// coalescing stage's open batches and gap EWMAs), rounded up to a power
    /// of two. `1` collapses to the legacy single-lock layout, which stays
    /// as the differential oracle.
    pub state_shards: usize,
    /// Cache the per-destination endpoint/hook lookup in a per-thread,
    /// generation-validated snapshot so fault-free sends take zero global
    /// `RwLock` reads. `false` restores the legacy read-locked lookups.
    pub endpoint_cache: bool,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            mailbox_capacity: 4096,
            shared_segments: Vec::new(),
            delivery_shards: 4,
            loopback_fast_path: true,
            batching: None,
            deliver_via_hook: false,
            state_shards: 64,
            endpoint_cache: true,
        }
    }
}

/// Tunables for the coalescing stage (see [`NetworkConfig::batching`]).
#[derive(Clone, Debug)]
pub struct BatchConfig {
    /// Virtual seconds a freshly opened batch waits for followers before it
    /// is flushed onto the wire.
    pub flush_window: f64,
    /// Flush immediately once a batch's summed payload reaches this many
    /// bytes, without waiting out the window.
    pub max_bytes: usize,
    /// Adapt the flush window per pair: an EWMA of the pair's inter-send
    /// gaps sizes each batch's window to `2 × ewma`, clamped to
    /// `[flush_window / 16, flush_window]`. Chatty pairs flush almost
    /// immediately (they re-coalesce on the next burst anyway) while sparse
    /// pairs keep the full window. `flush_window` becomes the ceiling.
    pub adaptive: bool,
    /// Modeled compression ratio applied to multi-message batches: a batch
    /// of `n > 1` coalesced RMIs (shared headers, similar small payloads)
    /// is charged `ceil(bytes × compression)` wire bytes for its transfer
    /// time and its `max_bytes` overflow check. Lone messages are never
    /// compressed (framing overhead would dominate). `1.0` — the default —
    /// disables compression and is byte-identical to the pre-compression
    /// accounting; per-member stats attribution always keeps the
    /// uncompressed sizes.
    pub compression: f64,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            flush_window: 5e-4,
            max_bytes: 256 * 1024,
            adaptive: false,
            compression: 1.0,
        }
    }
}

/// Deadline slack within which a local send may be completed inline. Matches
/// the delivery thread's own spin horizon, so going inline never delivers
/// *later* than the queued path would.
fn inline_horizon() -> Duration {
    crate::clock::spin_window() + Duration::from_micros(100)
}

/// A tiny spin gate serializing all deliveries into one node's local hook.
///
/// The loopback fast path acquires it with `try_acquire` *inside* the
/// `pair_last` critical section (so a queued-path delivery racing with an
/// inline one is impossible), and the shard threads block on `acquire` when
/// handing a local message to the hook. Hold times are bounded by one hook
/// dispatch plus at most one `inline_horizon` spin-sleep, so a plain
/// yield-spin is cheaper than parking. A dedicated type (instead of a
/// `Mutex<()>`) lets the guard travel independently of a borrow on the map
/// entry that produced it.
struct Gate(AtomicBool);

impl Gate {
    fn new() -> Self {
        Gate(AtomicBool::new(false))
    }
    fn try_acquire(&self) -> bool {
        self.0
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
    }
    fn acquire(&self) {
        while !self.try_acquire() {
            std::thread::yield_now();
        }
    }
    fn release(&self) {
        self.0.store(false, Ordering::Release);
    }
}

/// RAII release for [`Gate`]; keeps the hook panic-safe (a stuck gate would
/// wedge every later local delivery for the node).
struct GateGuard<'a>(&'a Gate);

impl Drop for GateGuard<'_> {
    fn drop(&mut self) {
        self.0.release();
    }
}

/// Inline-delivery endpoint for one node's local traffic.
#[derive(Clone)]
struct LocalEndpoint {
    hook: LocalHook,
    gate: Arc<Gate>,
}

/// Per directed-pair connection state (see the FIFO comment in
/// [`Network::send`]). `queued` counts node-local messages currently on the
/// delivery plane; the fast path only engages when it is zero, so an inline
/// delivery can never overtake an earlier queued one.
#[derive(Clone, Copy, Default)]
struct PairState {
    arrival: f64,
    queued: u32,
}

/// One per-thread-cached directory entry for a destination: its mailbox
/// sender and its local-hook endpoint, both absent-capable (a negative
/// entry is as cacheable as a positive one — any change bumps the
/// generation).
#[derive(Clone, Default)]
struct CachedEp {
    sender: Option<Sender<Envelope>>,
    local: Option<LocalEndpoint>,
}

struct EpCache {
    /// Which [`Routing`] instance the entries belong to (tests boot many
    /// networks per process; a thread may serve several in sequence).
    routing: u64,
    /// The directory generation the entries were read at.
    gen: u64,
    map: HashMap<NodeId, CachedEp>,
}

thread_local! {
    /// Per-thread endpoint-directory cache. Validated against the owning
    /// routing table's generation with one atomic load per lookup; a
    /// mismatch (rare: registration churn, hook swaps) clears the thread's
    /// entries wholesale.
    static EP_CACHE: RefCell<EpCache> = RefCell::new(EpCache {
        routing: 0,
        gen: 0,
        map: HashMap::new(),
    });
}

/// Routing-instance id source for [`EpCache::routing`].
static NEXT_ROUTING_ID: AtomicU64 = AtomicU64::new(1);

struct Routing {
    endpoints: RwLock<HashMap<NodeId, Sender<Envelope>>>,
    dead: RwLock<HashSet<NodeId>>,
    partitions: RwLock<HashSet<(NodeId, NodeId)>>,
    /// Snapshot of `dead.len() + partitions.len()`, maintained under the
    /// respective write locks. While it reads zero — the overwhelmingly
    /// common case — `send`/`deliver` skip the dead/partition read locks
    /// entirely.
    faults: AtomicUsize,
    /// Inline delivery hooks for node-local traffic.
    local: RwLock<HashMap<NodeId, LocalEndpoint>>,
    /// Mirror of [`NetworkConfig::deliver_via_hook`]: prefer the hook for
    /// *all* destinations, not just node-local ones.
    via_hook: bool,
    /// Process-unique instance id keying the per-thread endpoint caches.
    id: u64,
    /// Directory generation: bumped by `register`/`unregister`/
    /// `set_local_hook` so per-thread caches validate without touching the
    /// `RwLock`s above.
    gen: AtomicU64,
    /// Mirror of [`NetworkConfig::endpoint_cache`].
    cache_enabled: bool,
    ep_cache_hits: AtomicU64,
    ep_cache_misses: AtomicU64,
    /// Pre-resolved `net.shard.cache_miss` handle (no-op when obs is off).
    obs_cache_miss: Counter,
    stats: NetStats,
    obs: ObsRegistry,
}

impl Routing {
    fn bump_gen(&self) {
        self.gen.fetch_add(1, Ordering::Release);
    }

    /// Looks `dst` up through the calling thread's cache: zero `RwLock`
    /// reads while the directory generation is unchanged — the steady state
    /// for every send and delivery after boot.
    fn cached<R>(&self, dst: NodeId, f: impl FnOnce(&CachedEp) -> R) -> R {
        EP_CACHE.with(|c| {
            let mut c = c.borrow_mut();
            let gen = self.gen.load(Ordering::Acquire);
            if c.routing != self.id || c.gen != gen {
                c.map.clear();
                c.routing = self.id;
                c.gen = gen;
            }
            if let Some(e) = c.map.get(&dst) {
                self.ep_cache_hits.fetch_add(1, Ordering::Relaxed);
                return f(e);
            }
            self.ep_cache_misses.fetch_add(1, Ordering::Relaxed);
            self.obs_cache_miss.inc();
            let e = CachedEp {
                sender: self.endpoints.read().get(&dst).cloned(),
                local: self.local.read().get(&dst).cloned(),
            };
            f(c.map.entry(dst).or_insert(e))
        })
    }

    /// Whether `dst` has a registered mailbox endpoint.
    fn has_endpoint(&self, dst: NodeId) -> bool {
        if self.cache_enabled {
            self.cached(dst, |e| e.sender.is_some())
        } else {
            self.endpoints.read().contains_key(&dst)
        }
    }

    /// The local-hook endpoint for `dst`, if installed.
    fn local_ep(&self, dst: NodeId) -> Option<LocalEndpoint> {
        if self.cache_enabled {
            self.cached(dst, |e| e.local.clone())
        } else {
            self.local.read().get(&dst).cloned()
        }
    }

    /// The mailbox sender for `dst`, if registered.
    fn sender(&self, dst: NodeId) -> Option<Sender<Envelope>> {
        if self.cache_enabled {
            self.cached(dst, |e| e.sender.clone())
        } else {
            self.endpoints.read().get(&dst).cloned()
        }
    }
    fn pair_key(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    fn fault_free(&self) -> bool {
        self.faults.load(Ordering::Relaxed) == 0
    }

    /// Slow-path fault check; only consulted when `fault_free()` is false.
    fn is_blocked(&self, src: NodeId, dst: NodeId) -> bool {
        {
            let dead = self.dead.read();
            if dead.contains(&src) || dead.contains(&dst) {
                return true;
            }
        }
        self.partitions.read().contains(&Self::pair_key(src, dst))
    }

    fn drop_env(&self, env: &Envelope) {
        self.stats
            .record_drop(env.src, env.dst, env.payload.wire_bytes());
        if self.obs.is_enabled() {
            self.obs.counter("net.dropped", Some(env.dst.0), "").inc();
        }
    }

    fn deliver(&self, env: Envelope) {
        // A coalesced batch arrives as one wire transfer but is unpacked
        // here, on the delivery side, so endpoints only ever observe the
        // member envelopes — individually, in send order, each re-checked
        // and counted exactly as it would have been unbatched.
        if env.payload.tag() == BATCH_TAG {
            let Envelope {
                src,
                dst,
                sent_at,
                payload,
            } = env;
            match payload.downcast::<Batch>() {
                Ok(batch) => {
                    for inner in batch.envs {
                        self.deliver_one(inner);
                    }
                }
                // A caller-crafted payload that merely reuses the tag: fall
                // through and deliver it like any other message.
                Err(payload) => self.deliver_one(Envelope {
                    src,
                    dst,
                    sent_at,
                    payload,
                }),
            }
            return;
        }
        self.deliver_one(env);
    }

    fn deliver_one(&self, env: Envelope) {
        // Conditions are re-checked at delivery time: a node killed while a
        // message is in flight must not receive it.
        if !self.fault_free() && self.is_blocked(env.src, env.dst) {
            self.drop_env(&env);
            return;
        }
        if env.src == env.dst || self.via_hook {
            // Queued node-local delivery: hand to the hook under the gate so
            // it serializes with any in-progress inline delivery. Never via
            // the mailbox — the hook keeps "delivered" and "dispatched"
            // synonymous, which the fast path's queued==0 check relies on.
            // In hook-routed mode (the executor runtime) remote traffic
            // takes this path too; a destination without a hook falls
            // through to the mailbox below.
            let ep = self.local_ep(env.dst);
            if let Some(ep) = ep {
                let (dst, bytes) = (env.dst, env.payload.wire_bytes());
                ep.gate.acquire();
                let _guard = GateGuard(&ep.gate);
                // Count before dispatching: once the gate is held the
                // delivery is committed, and counting first means a caller
                // woken by the hook (e.g. a sync response) can never observe
                // stats that lag its own message.
                self.stats.record_delivery(dst, bytes);
                (ep.hook)(env);
                return;
            }
        }
        let sender = self.sender(env.dst);
        match sender {
            Some(tx) => {
                let (dst, bytes) = (env.dst, env.payload.wire_bytes());
                // Count before handing off, mirroring the hook path above: a
                // caller woken by the receiving endpoint must never observe
                // stats that lag its own message. An endpoint that vanishes
                // between the count and the send is compensated as a drop.
                self.stats.record_delivery(dst, bytes);
                if let Err(e) = tx.send(env) {
                    self.stats.uncount_delivery(dst, e.0.payload.wire_bytes());
                    self.drop_env(&e.0);
                }
            }
            None => self.drop_env(&env),
        }
    }
}

/// Internal payload tag for a batch-flush timer riding the delay queue.
const FLUSH_TAG: &str = "net.batch.flush";

/// Timer payload armed when a batch opens; matched against the batch's
/// epoch at fire time so a timer whose batch already overflowed (and whose
/// pair may have a successor batch open) is a no-op.
struct FlushToken {
    epoch: u64,
}

/// One open (not yet flushed) batch for a directed pair.
struct PendingBatch {
    /// Members in send order.
    envs: Vec<Envelope>,
    /// Summed payload wire bytes.
    bytes: usize,
    /// Identity of this batch instance (see [`FlushToken`]).
    epoch: u64,
}

/// The send-side coalescing stage (see [`NetworkConfig::batching`]).
///
/// [`Network::send`] parks non-local envelopes here instead of scheduling
/// them directly: the first envelope of a `(src, dst)` pair opens a batch
/// and arms a flush timer one `flush_window` out, followers join until the
/// timer fires or `max_bytes` overflows the batch, and the flush reserves
/// the pair's FIFO slot and schedules one [`Batch`] envelope charged the
/// link latency once plus the summed payload bytes. Delivery unpacks the
/// wrapper back into its members (see [`Routing::deliver`]), so per-message
/// semantics, ordering and [`NetStats`] attribution are exactly those of
/// the unbatched plane.
///
/// Lock order: `pending` stripe → `pair_last` stripe → `segment_last` slot →
/// queue shard. The pending stripe lock is held through the FIFO reservation
/// *and* the queue push, so two flushes of the same pair (a window timer
/// racing a `max_bytes` overflow of the successor batch) cannot reserve out
/// of order. All per-pair state is striped on the packed pair key (see
/// [`crate::shard`]): a pair's state always lives on one stripe, so the
/// per-pair protocol is untouched while unrelated pairs stop contending.
struct BatchStage {
    clock: SimClock,
    topo: Arc<RwLock<Topology>>,
    routing: Arc<Routing>,
    pair_last: Arc<Striped<PairState>>,
    segment_last: Arc<SegmentSlots>,
    shared_segments: Vec<LinkClass>,
    /// Back-reference to the delivery plane, set right after the plane is
    /// started (its deliver closure needs the stage first).
    queue: OnceLock<Arc<DelayQueue>>,
    /// Open batches per directed pair, striped on the packed pair key.
    pending: Striped<PendingBatch>,
    /// Count of currently open batches (backs the `net.batch.pending`
    /// gauge without walking every stripe).
    open_batches: AtomicU64,
    epochs: AtomicU64,
    config: BatchConfig,
    /// Per-pair inter-send gap EWMA (virtual seconds), driving the adaptive
    /// flush window (see [`BatchConfig::adaptive`]). Locked alone, before
    /// any other stage lock.
    gaps: Striped<GapEwma>,
}

/// Inter-send gap tracker for one directed pair.
struct GapEwma {
    /// Virtual time of the pair's previous send.
    last_send: f64,
    /// Exponentially-weighted moving average of inter-send gaps.
    ewma: f64,
}

/// EWMA smoothing factor: each new gap contributes 20%.
const GAP_ALPHA: f64 = 0.2;

impl BatchStage {
    /// Observes one send on `pair` at virtual time `now` and returns the
    /// flush window a batch opened by it should wait: `2 × ewma` of the
    /// pair's inter-send gaps, clamped to `[flush_window/16, flush_window]`.
    /// Modeled wire bytes a batch of `n` messages totalling `bytes` payload
    /// bytes occupies: multi-message batches compress at the configured
    /// ratio, lone messages go out as-is.
    fn charged_bytes(&self, n: usize, bytes: usize) -> usize {
        if n > 1 && self.config.compression < 1.0 {
            (bytes as f64 * self.config.compression).ceil() as usize
        } else {
            bytes
        }
    }

    /// A pair's first send (no gap yet) gets the full window.
    fn adaptive_window(&self, pair: (NodeId, NodeId), now: f64) -> f64 {
        let full = self.config.flush_window;
        let key = pair_key(pair.0, pair.1);
        let mut gaps = self.gaps.lock(key);
        match gaps.get_mut(&key) {
            Some(g) => {
                let gap = (now - g.last_send).max(0.0);
                g.ewma = (1.0 - GAP_ALPHA) * g.ewma + GAP_ALPHA * gap;
                g.last_send = now;
                (2.0 * g.ewma).clamp(full / 16.0, full)
            }
            None => {
                gaps.insert(
                    key,
                    GapEwma {
                        last_send: now,
                        ewma: full / 2.0,
                    },
                );
                full
            }
        }
    }

    /// Parks `env` on its pair's open batch, opening one (plus its flush
    /// timer) if none is open and flushing eagerly on `max_bytes` overflow.
    fn enqueue(&self, env: Envelope) {
        let pair = (env.src, env.dst);
        let key = pair_key(env.src, env.dst);
        let bytes = env.payload.wire_bytes();
        let obs_on = self.routing.obs.is_enabled();
        // The gap EWMA is fed by every send of the pair, coalesced followers
        // included; only batch-opening sends read the window back.
        let window = if self.config.adaptive {
            self.adaptive_window(pair, self.clock.now())
        } else {
            self.config.flush_window
        };
        let mut pending = self.pending.lock(key);
        match pending.remove(&key) {
            Some(mut batch) => {
                batch.envs.push(env);
                batch.bytes += bytes;
                if obs_on {
                    self.routing
                        .obs
                        .counter("net.batch.coalesced", Some(pair.0 .0), "")
                        .inc();
                }
                // Overflow is judged on the modeled wire size, so a
                // compressing batch can coalesce proportionally more
                // payload before an eager flush.
                if self.charged_bytes(batch.envs.len(), batch.bytes) >= self.config.max_bytes {
                    self.open_batches.fetch_sub(1, Ordering::Relaxed);
                    self.transmit(&mut pending, pair, batch, "bytes");
                } else {
                    pending.insert(key, batch);
                }
            }
            None if bytes >= self.config.max_bytes => {
                // Oversized lone message: nothing could ever join it, so
                // skip the window (and the timer) entirely.
                let batch = PendingBatch {
                    envs: vec![env],
                    bytes,
                    epoch: self.epochs.fetch_add(1, Ordering::Relaxed),
                };
                self.transmit(&mut pending, pair, batch, "bytes");
            }
            None => {
                let now = self.clock.now();
                let epoch = self.epochs.fetch_add(1, Ordering::Relaxed);
                pending.insert(
                    key,
                    PendingBatch {
                        envs: vec![env],
                        bytes,
                        epoch,
                    },
                );
                self.open_batches.fetch_add(1, Ordering::Relaxed);
                let due = self.clock.real_deadline(now + window);
                if let Some(q) = self.queue.get() {
                    q.push(
                        due,
                        Envelope {
                            src: pair.0,
                            dst: pair.1,
                            sent_at: now,
                            payload: Payload::new(FLUSH_TAG, 0, FlushToken { epoch }),
                        },
                    );
                }
            }
        }
        if obs_on {
            self.routing
                .obs
                .gauge("net.batch.pending", None, "")
                .set(self.open_batches.load(Ordering::Relaxed) as f64);
        }
    }

    /// Window-timer fire: flushes the pair's batch if it is still the one
    /// the timer was armed for.
    fn flush_due(&self, pair: (NodeId, NodeId), epoch: u64) {
        let key = pair_key(pair.0, pair.1);
        let mut pending = self.pending.lock(key);
        match pending.remove(&key) {
            Some(batch) if batch.epoch == epoch => {
                self.open_batches.fetch_sub(1, Ordering::Relaxed);
                self.transmit(&mut pending, pair, batch, "window");
                if self.routing.obs.is_enabled() {
                    self.routing
                        .obs
                        .gauge("net.batch.pending", None, "")
                        .set(self.open_batches.load(Ordering::Relaxed) as f64);
                }
            }
            // A successor batch opened after ours overflowed: not ours.
            Some(batch) => {
                pending.insert(key, batch);
            }
            None => {}
        }
    }

    /// Reserves the pair's FIFO slot for one batched transfer (latency once,
    /// summed bytes) and schedules it. The `_pending` guard proves the
    /// caller holds the pending lock — see the lock-order note on the type.
    fn transmit(
        &self,
        _pending: &mut PairMap<PendingBatch>,
        pair: (NodeId, NodeId),
        batch: PendingBatch,
        reason: &'static str,
    ) {
        let (src, dst) = pair;
        let key = pair_key(src, dst);
        let now = self.clock.now();
        let n = batch.envs.len();
        // Transfer time is paid on the modeled (possibly compressed) wire
        // size; per-member stats attribution keeps uncompressed sizes.
        let charged = self.charged_bytes(n, batch.bytes);
        let (link, latency, tx_time) = {
            let topo = self.topo.read();
            let link = topo.link_between(src, dst);
            (link, link.latency(), link.transfer_time(charged))
        };
        // Same reservation discipline as the unbatched path in
        // `Network::send`, applied once for the whole batch.
        let due = {
            let mut pairs = self.pair_last.lock(key);
            let st = pairs.entry(key).or_default();
            let mut start = (now + latency).max(st.arrival);
            let shared = self.shared_segments.contains(&link);
            let arrival = if shared {
                // Holding the slot across read + write serializes the whole
                // segment reservation, same as the legacy double-lock.
                let mut seg = self.segment_last.lock(link);
                start = start.max(*seg);
                let arrival = start + tx_time;
                *seg = arrival;
                arrival
            } else {
                start + tx_time
            };
            st.arrival = arrival;
            self.clock.real_deadline(arrival)
        };
        if self.routing.obs.is_enabled() {
            let obs = &self.routing.obs;
            obs.counter("net.batch.flushed", Some(src.0), reason).inc();
            obs.counter("net.batch.msgs", Some(src.0), "").add(n as u64);
            if charged < batch.bytes {
                // Modeled post-compression wire bytes actually charged.
                obs.counter("net.batch.compressed_bytes", Some(src.0), "")
                    .add(charged as u64);
            }
            if n > 1 {
                // Modeled wire capacity freed: every coalesced follower
                // skips one link-latency charge, i.e. `latency × bandwidth`
                // bytes the link can now carry instead.
                let saved = (n - 1) as f64 * latency * link.bandwidth();
                obs.counter("net.batch.bytes_saved", Some(src.0), "")
                    .add(saved as u64);
            }
        }
        let env = if n == 1 {
            // A lone message needs no wrapper; it is charged identically.
            batch.envs.into_iter().next().expect("n == 1")
        } else {
            Envelope {
                src,
                dst,
                sent_at: now,
                payload: Payload::new(BATCH_TAG, batch.bytes, Batch { envs: batch.envs }),
            }
        };
        if let Some(q) = self.queue.get() {
            q.push(due, env);
        }
    }
}

/// An in-process simulated network.
///
/// Cloning shares the same network. Endpoints are registered per node; sends
/// are charged the link's latency + transmission delay and delivered by the
/// sharded delivery plane — or, for node-local traffic with an installed
/// [`Network::set_local_hook`], inline on the caller's thread.
#[derive(Clone)]
pub struct Network {
    clock: SimClock,
    topo: Arc<RwLock<Topology>>,
    routing: Arc<Routing>,
    queue: Arc<DelayQueue>,
    /// Connection state (last scheduled arrival in virtual time, queued
    /// local count) per directed node pair, enforcing connection-FIFO
    /// ordering. Lock-striped by the packed pair key
    /// ([`NetworkConfig::state_shards`]); `shards == 1` is the legacy
    /// single-lock oracle.
    pair_last: Arc<Striped<PairState>>,
    /// Last scheduled arrival per shared segment (see
    /// [`NetworkConfig::shared_segments`]): one slot per link class.
    segment_last: Arc<SegmentSlots>,
    /// The coalescing stage, when [`NetworkConfig::batching`] is set.
    batching: Option<Arc<BatchStage>>,
    config: NetworkConfig,
}

/// Snapshot of the delivery plane's hot-path contention counters
/// ([`Network::hot_stats`]). "Contended" counts stripe-lock acquisitions
/// that found the lock held and had to wait.
#[derive(Debug, Clone, Copy, Default)]
pub struct NetHotStats {
    /// Effective stripe count (after power-of-two rounding).
    pub state_shards: usize,
    /// Contended acquisitions of `pair_last` stripes.
    pub pair_contended: u64,
    /// Contended acquisitions of the batching stage's `pending` stripes.
    pub pending_contended: u64,
    /// Contended acquisitions of the adaptive-window `gaps` stripes.
    pub gaps_contended: u64,
    /// Per-thread endpoint-cache hits (lookups with zero `RwLock` reads).
    pub ep_cache_hits: u64,
    /// Endpoint-cache misses (directory reads under the `RwLock`s).
    pub ep_cache_misses: u64,
}

impl Network {
    /// Creates a network over `topo` driven by `clock`.
    pub fn new(clock: SimClock, topo: Topology) -> Self {
        Self::with_config(clock, topo, NetworkConfig::default())
    }

    /// Creates a network with explicit tunables.
    pub fn with_config(clock: SimClock, topo: Topology, config: NetworkConfig) -> Self {
        Self::with_obs(clock, topo, config, ObsRegistry::disabled())
    }

    /// Creates a network with explicit tunables and an observability scope.
    /// An enabled `obs` gets per-link `net.bytes`/`net.latency` histograms
    /// and `net.dropped`/`net.rejected` counters on top of [`NetStats`].
    pub fn with_obs(
        clock: SimClock,
        topo: Topology,
        config: NetworkConfig,
        obs: ObsRegistry,
    ) -> Self {
        Self::with_obs_and_spawner(clock, topo, config, obs, None)
    }

    /// Creates a network whose delivery plane runs as externally scheduled
    /// tasks instead of dedicated shard threads, when `spawner` is provided
    /// (see [`crate::SpawnAt`]; used by the executor runtime). With
    /// `spawner: None` this is exactly [`Network::with_obs`].
    pub fn with_obs_and_spawner(
        clock: SimClock,
        topo: Topology,
        config: NetworkConfig,
        obs: ObsRegistry,
        spawner: Option<crate::SpawnAt>,
    ) -> Self {
        // Pre-resolve the shard counters before `obs` moves into `Routing`;
        // each is a no-op handle when observability is off.
        let c_pair = obs.counter("net.shard.contended", None, "pair");
        let c_pending = obs.counter("net.shard.contended", None, "pending");
        let c_gaps = obs.counter("net.shard.contended", None, "gaps");
        let c_cache_miss = obs.counter("net.shard.cache_miss", None, "");
        let routing = Arc::new(Routing {
            endpoints: RwLock::new(HashMap::new()),
            dead: RwLock::new(HashSet::new()),
            partitions: RwLock::new(HashSet::new()),
            faults: AtomicUsize::new(0),
            local: RwLock::new(HashMap::new()),
            via_hook: config.deliver_via_hook,
            id: NEXT_ROUTING_ID.fetch_add(1, Ordering::Relaxed),
            gen: AtomicU64::new(0),
            cache_enabled: config.endpoint_cache,
            ep_cache_hits: AtomicU64::new(0),
            ep_cache_misses: AtomicU64::new(0),
            obs_cache_miss: c_cache_miss,
            stats: NetStats::default(),
            obs,
        });
        // Per-stripe capacities: pairs are the hottest map (every directed
        // pair ever seen), batches are bounded by in-flight pairs.
        let shards = config.state_shards;
        let pair_last = Arc::new(Striped::new(shards, 256, c_pair));
        let segment_last = Arc::new(SegmentSlots::new());
        let topo = Arc::new(RwLock::new(topo));
        let batching = config.batching.clone().map(|bc| {
            Arc::new(BatchStage {
                clock: clock.clone(),
                topo: Arc::clone(&topo),
                routing: Arc::clone(&routing),
                pair_last: Arc::clone(&pair_last),
                segment_last: Arc::clone(&segment_last),
                shared_segments: config.shared_segments.clone(),
                queue: OnceLock::new(),
                pending: Striped::new(shards, 64, c_pending),
                open_batches: AtomicU64::new(0),
                epochs: AtomicU64::new(0),
                config: bc,
                gaps: Striped::new(shards, 256, c_gaps),
            })
        });
        let deliver_routing = Arc::clone(&routing);
        let deliver_pairs = Arc::clone(&pair_last);
        let flush_stage = batching.clone();
        let deliver: crate::queue::DeliverFn = Arc::new(move |env: Envelope| {
            // Batch-flush timers never reach an endpoint; they re-enter
            // the coalescing stage, which schedules the batch proper.
            if env.payload.tag() == FLUSH_TAG {
                if let (Some(stage), Some(tok)) =
                    (&flush_stage, env.payload.downcast_ref::<FlushToken>())
                {
                    stage.flush_due((env.src, env.dst), tok.epoch);
                }
                return;
            }
            // The queued count underpins the fast path's FIFO guarantee:
            // decrement only after deliver() returns, i.e. after a local
            // hook has fully dispatched the message.
            let local_key = (env.src == env.dst).then(|| pair_key(env.src, env.dst));
            deliver_routing.deliver(env);
            if let Some(key) = local_key {
                if let Some(st) = deliver_pairs.lock(key).get_mut(&key) {
                    st.queued = st.queued.saturating_sub(1);
                }
            }
        });
        let queue = Arc::new(match spawner {
            Some(sp) => DelayQueue::start_tasked(config.delivery_shards, sp, deliver),
            None => DelayQueue::start(config.delivery_shards, deliver),
        });
        if let Some(stage) = &batching {
            let _ = stage.queue.set(Arc::clone(&queue));
        }
        Network {
            clock,
            topo,
            routing,
            queue,
            pair_last,
            segment_last,
            batching,
            config,
        }
    }

    /// Registers (or re-registers) the endpoint for `node`, returning its
    /// mailbox. Re-registering replaces the previous mailbox and clears any
    /// dead flag (a node rejoining the cluster).
    pub fn register(&self, node: NodeId) -> Receiver<Envelope> {
        let (tx, rx) = crossbeam::channel::bounded(self.config.mailbox_capacity);
        self.routing.endpoints.write().insert(node, tx);
        self.routing.bump_gen();
        {
            let mut dead = self.routing.dead.write();
            if dead.remove(&node) {
                self.routing.faults.fetch_sub(1, Ordering::Relaxed);
            }
        }
        rx
    }

    /// Installs the inline delivery hook for `node`'s local (`src == dst`)
    /// traffic. With a hook installed, local messages are dispatched by
    /// calling it — inline on the sender's thread when the loopback fast
    /// path engages, from a delivery-plane thread otherwise — instead of
    /// being posted to the node's mailbox. Deliveries into one node's hook
    /// are serialized.
    pub fn set_local_hook(&self, node: NodeId, hook: LocalHook) {
        self.routing.local.write().insert(
            node,
            LocalEndpoint {
                hook,
                gate: Arc::new(Gate::new()),
            },
        );
        self.routing.bump_gen();
    }

    /// Removes the endpoint for `node`; in-flight messages to it are dropped.
    pub fn unregister(&self, node: NodeId) {
        self.routing.endpoints.write().remove(&node);
        self.routing.local.write().remove(&node);
        self.routing.bump_gen();
    }

    fn reject(&self, src: NodeId, bytes: usize, err: SendError) -> SendError {
        self.routing.stats.record_rejection(src, bytes);
        if self.routing.obs.is_enabled() {
            self.routing
                .obs
                .counter("net.rejected", Some(src.0), "")
                .inc();
        }
        err
    }

    /// Sends `payload` from `src` to `dst`, paying the modeled delay.
    ///
    /// Refused sends (dead node, partition, unknown destination) are counted
    /// as rejections against `src` in [`NetStats`].
    pub fn send(&self, src: NodeId, dst: NodeId, payload: Payload) -> Result<(), SendError> {
        let bytes = payload.wire_bytes();
        if !self.routing.fault_free() {
            {
                let dead = self.routing.dead.read();
                if dead.contains(&src) {
                    return Err(self.reject(src, bytes, SendError::DeadSource(src)));
                }
                if dead.contains(&dst) {
                    return Err(self.reject(src, bytes, SendError::DeadDestination(dst)));
                }
            }
            if self
                .routing
                .partitions
                .read()
                .contains(&Routing::pair_key(src, dst))
            {
                return Err(self.reject(src, bytes, SendError::Partitioned(src, dst)));
            }
        }
        if !self.routing.has_endpoint(dst) {
            return Err(self.reject(src, bytes, SendError::UnknownDestination(dst)));
        }
        let now = self.clock.now();
        let (link, latency, tx_time) = {
            let topo = self.topo.read();
            let link = topo.link_between(src, dst);
            (
                link,
                link.latency(),
                link.transfer_time(payload.wire_bytes()),
            )
        };
        self.routing.stats.record_send(src, payload.wire_bytes());
        if self.routing.obs.is_enabled() {
            let obs = &self.routing.obs;
            let name = link_name(link);
            obs.histogram("net.bytes", Some(src.0), name, bounds::SIZE_BYTES)
                .observe(bytes as f64);
            obs.histogram("net.latency", Some(src.0), name, bounds::LATENCY_SECONDS)
                .observe(latency + tx_time);
        }
        let env = Envelope {
            src,
            dst,
            sent_at: now,
            payload,
        };
        // Coalescing stage: non-local sends park on their pair's open batch
        // instead of reserving the wire per message. The send is already
        // accepted and counted at this point; delivery-time re-checks (and
        // per-member stats) happen when the batch is unpacked. Node-local
        // traffic stays on the loopback plane below.
        if src != dst {
            if let Some(stage) = &self.batching {
                stage.enqueue(env);
                return Ok(());
            }
        }
        // Per-ordered-pair FIFO with serialized transmission: Java RMI
        // multiplexes one TCP connection per agent pair, so a later (small)
        // message can neither overtake an earlier (large) one nor start
        // transmitting before it has finished. A shared segment additionally
        // serializes transmissions across *all* of its pairs.
        //
        // Node-local sends may take the loopback fast path: deliver inline on
        // this thread, skipping the delay-queue heap and the cross-thread
        // hand-off. Eligibility is decided *inside* the pair_last critical
        // section, and the node's gate is acquired there too, so the decision
        // is atomic with respect to both later sends and the delivery plane:
        //   * queued == 0 — no earlier local message is still on (or being
        //     dispatched from) the delivery plane that we could overtake;
        //   * the deadline is within the inline horizon — we spin-sleep to
        //     the same `due` the delivery thread would, preserving
        //     virtual-time semantics exactly;
        //   * gate try-acquired — a hook running right now (e.g. we are
        //     *inside* a hook dispatch and it sent to itself) falls back to
        //     the queued path rather than deadlocking or reordering.
        let local = src == dst;
        let key = pair_key(src, dst);
        let mut inline: Option<LocalEndpoint> = None;
        let due = {
            let mut pairs = self.pair_last.lock(key);
            let st = pairs.entry(key).or_default();
            let mut start = (now + latency).max(st.arrival);
            let shared = self.config.shared_segments.contains(&link);
            let arrival = if shared {
                // Hold the class slot across read + write so the segment
                // reservation is a single serialized critical section, same
                // as the legacy double-lock sequence.
                let mut seg = self.segment_last.lock(link);
                start = start.max(*seg);
                let arrival = start + tx_time;
                *seg = arrival;
                arrival
            } else {
                start + tx_time
            };
            st.arrival = arrival;
            let due = self.clock.real_deadline(arrival);
            if local && self.config.loopback_fast_path && st.queued == 0 {
                let eligible = due.saturating_duration_since(Instant::now()) <= inline_horizon();
                if eligible {
                    if let Some(ep) = self.routing.local_ep(dst) {
                        if ep.gate.try_acquire() {
                            inline = Some(ep);
                        }
                    }
                }
            }
            if local && inline.is_none() {
                st.queued += 1;
            }
            due
        };
        match inline {
            Some(ep) => {
                let _guard = GateGuard(&ep.gate);
                crate::clock::sleep_until(due);
                // Delivery-time re-checks, identical to the queued path.
                if !self.routing.fault_free() && self.routing.is_blocked(src, dst) {
                    self.routing.drop_env(&env);
                } else {
                    // Count before dispatching, mirroring the queued hook
                    // path: a caller woken by the hook (e.g. the sync reply
                    // this delivery completes) must never observe stats that
                    // lag its own message.
                    self.routing.stats.record_delivery(dst, bytes);
                    if self.routing.obs.is_enabled() {
                        self.routing
                            .obs
                            .counter("net.loopback", Some(dst.0), "")
                            .inc();
                    }
                    (ep.hook)(env);
                }
            }
            None => self.queue.push(due, env),
        }
        Ok(())
    }

    /// Kills `node`: future sends to/from it fail and in-flight messages are
    /// dropped at delivery time. Used by the fault-tolerance experiments.
    pub fn kill_node(&self, node: NodeId) {
        let mut dead = self.routing.dead.write();
        if dead.insert(node) {
            self.routing.faults.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Revives a previously killed node (its endpoint must be re-registered).
    pub fn revive_node(&self, node: NodeId) {
        let mut dead = self.routing.dead.write();
        if dead.remove(&node) {
            self.routing.faults.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Whether `node` is currently marked dead.
    pub fn is_dead(&self, node: NodeId) -> bool {
        !self.routing.fault_free() && self.routing.dead.read().contains(&node)
    }

    /// Blocks traffic between `a` and `b` (both directions).
    pub fn partition(&self, a: NodeId, b: NodeId) {
        let mut partitions = self.routing.partitions.write();
        if partitions.insert(Routing::pair_key(a, b)) {
            self.routing.faults.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Heals a previous [`Network::partition`].
    pub fn heal(&self, a: NodeId, b: NodeId) {
        let mut partitions = self.routing.partitions.write();
        if partitions.remove(&Routing::pair_key(a, b)) {
            self.routing.faults.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// The clock driving this network.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Read access to the topology (e.g. for cost estimation).
    pub fn topology(&self) -> Arc<RwLock<Topology>> {
        Arc::clone(&self.topo)
    }

    /// Snapshot of the traffic counters.
    pub fn stats(&self) -> NetStatsSnapshot {
        self.routing.stats.snapshot()
    }

    /// Per-endpoint traffic snapshots, sorted by node id.
    pub fn endpoint_stats(&self) -> Vec<EndpointStatsSnapshot> {
        self.routing.stats.per_endpoint()
    }

    /// The coalescing-stage tunables, or `None` when batching is disabled.
    pub fn batching_config(&self) -> Option<BatchConfig> {
        self.config.batching.clone()
    }

    /// Hot-path contention counters (see [`NetHotStats`]); the per-cell
    /// signal the `ablate_contention` bench sweeps.
    pub fn hot_stats(&self) -> NetHotStats {
        NetHotStats {
            state_shards: self.pair_last.shard_count(),
            pair_contended: self.pair_last.contended(),
            pending_contended: self.batching.as_ref().map_or(0, |b| b.pending.contended()),
            gaps_contended: self.batching.as_ref().map_or(0, |b| b.gaps.contended()),
            ep_cache_hits: self.routing.ep_cache_hits.load(Ordering::Relaxed),
            ep_cache_misses: self.routing.ep_cache_misses.load(Ordering::Relaxed),
        }
    }

    /// Stops the delivery plane, discarding in-flight messages. Further
    /// sends are silently queued nowhere; intended for deployment teardown.
    pub fn shutdown(&self) {
        self.queue.shutdown();
    }
}

/// Stable component label for a link class, used as the metrics key.
fn link_name(link: LinkClass) -> &'static str {
    match link {
        LinkClass::Loopback => "loopback",
        LinkClass::Lan100 => "lan100",
        LinkClass::Lan10 => "lan10",
        LinkClass::Wan => "wan",
    }
}

impl fmt::Debug for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Network")
            .field("endpoints", &self.routing.endpoints.read().len())
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LinkClass, TimeScale};
    use std::time::Duration;

    fn fast_net() -> Network {
        let mut topo = Topology::new();
        topo.set_default_class(LinkClass::Lan100);
        Network::new(SimClock::new(TimeScale::new(1e-5)), topo)
    }

    #[test]
    fn round_trip_delivery() {
        let net = fast_net();
        let _a = net.register(NodeId(0));
        let b = net.register(NodeId(1));
        net.send(NodeId(0), NodeId(1), Payload::new("hi", 64, 123u32))
            .unwrap();
        let env = b.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(env.src, NodeId(0));
        assert_eq!(*env.payload.downcast::<u32>().unwrap(), 123);
        let stats = net.stats();
        assert_eq!(stats.msgs_sent, 1);
        assert_eq!(stats.msgs_delivered, 1);
        assert_eq!(stats.bytes_sent, 64);
    }

    #[test]
    fn unknown_destination_rejected() {
        let net = fast_net();
        let _a = net.register(NodeId(0));
        let err = net
            .send(NodeId(0), NodeId(9), Payload::new("x", 1, ()))
            .unwrap_err();
        assert_eq!(err, SendError::UnknownDestination(NodeId(9)));
    }

    #[test]
    fn dead_node_rejects_sends_both_ways() {
        let net = fast_net();
        let _a = net.register(NodeId(0));
        let _b = net.register(NodeId(1));
        net.kill_node(NodeId(1));
        assert!(net.is_dead(NodeId(1)));
        assert_eq!(
            net.send(NodeId(0), NodeId(1), Payload::new("x", 1, ())),
            Err(SendError::DeadDestination(NodeId(1)))
        );
        assert_eq!(
            net.send(NodeId(1), NodeId(0), Payload::new("x", 1, ())),
            Err(SendError::DeadSource(NodeId(1)))
        );
        net.revive_node(NodeId(1));
        assert!(net
            .send(NodeId(0), NodeId(1), Payload::new("x", 1, ()))
            .is_ok());
    }

    #[test]
    fn kill_drops_in_flight_messages() {
        // Use a big payload over a slow link so the message is in flight long
        // enough to kill the destination underneath it.
        let mut topo = Topology::new();
        topo.set_default_class(LinkClass::Lan10);
        let net = Network::new(SimClock::new(TimeScale::new(1e-3)), topo);
        let _a = net.register(NodeId(0));
        let b = net.register(NodeId(1));
        net.send(NodeId(0), NodeId(1), Payload::new("big", 1 << 20, ()))
            .unwrap();
        net.kill_node(NodeId(1));
        assert!(b.recv_timeout(Duration::from_millis(1500)).is_err());
        assert_eq!(net.stats().msgs_dropped, 1);
    }

    #[test]
    fn refused_sends_are_counted_as_rejections() {
        let net = fast_net();
        let _a = net.register(NodeId(0));
        let _b = net.register(NodeId(1));
        net.partition(NodeId(0), NodeId(1));
        let _ = net.send(NodeId(0), NodeId(1), Payload::new("x", 10, ()));
        let _ = net.send(NodeId(0), NodeId(9), Payload::new("x", 5, ()));
        let stats = net.stats();
        assert_eq!(stats.msgs_rejected, 2);
        assert_eq!(stats.msgs_sent, 0);
        let eps = net.endpoint_stats();
        let n0 = eps.iter().find(|e| e.node == NodeId(0)).unwrap();
        assert_eq!(n0.rejected_msgs, 2);
        assert_eq!(n0.rejected_bytes, 15);
    }

    #[test]
    fn obs_records_link_histograms_and_drop_counters() {
        let mut topo = Topology::new();
        topo.set_default_class(LinkClass::Lan100);
        let obs = jsym_obs::ObsRegistry::new();
        let net = Network::with_obs(
            SimClock::new(TimeScale::new(1e-5)),
            topo,
            NetworkConfig::default(),
            obs.clone(),
        );
        let _a = net.register(NodeId(0));
        let b = net.register(NodeId(1));
        net.send(NodeId(0), NodeId(1), Payload::new("hi", 64, ()))
            .unwrap();
        b.recv_timeout(Duration::from_secs(2)).unwrap();
        net.partition(NodeId(0), NodeId(1));
        let _ = net.send(NodeId(0), NodeId(1), Payload::new("no", 8, ()));
        let snap = obs.snapshot();
        let h = &snap.metrics.histograms[&jsym_obs::MetricKey::new("net.bytes", Some(0), "lan100")];
        assert_eq!(h.count, 1);
        assert_eq!(h.sum, 64.0);
        assert!(snap
            .metrics
            .histograms
            .contains_key(&jsym_obs::MetricKey::new("net.latency", Some(0), "lan100")));
        assert_eq!(snap.metrics.counter_total("net.rejected"), 1);
    }

    #[test]
    fn partition_blocks_and_heals() {
        let net = fast_net();
        let _a = net.register(NodeId(0));
        let b = net.register(NodeId(1));
        net.partition(NodeId(0), NodeId(1));
        assert_eq!(
            net.send(NodeId(0), NodeId(1), Payload::new("x", 1, ())),
            Err(SendError::Partitioned(NodeId(0), NodeId(1)))
        );
        net.heal(NodeId(0), NodeId(1));
        net.send(NodeId(0), NodeId(1), Payload::new("x", 1, ()))
            .unwrap();
        assert!(b.recv_timeout(Duration::from_secs(2)).is_ok());
    }

    #[test]
    fn larger_messages_take_longer() {
        let mut topo = Topology::new();
        topo.set_default_class(LinkClass::Lan10);
        // 1 virtual second = 10 ms real.
        let clock = SimClock::new(TimeScale::new(1e-2));
        let net = Network::new(clock.clone(), topo);
        let _a = net.register(NodeId(0));
        let b = net.register(NodeId(1));

        let t0 = std::time::Instant::now();
        net.send(NodeId(0), NodeId(1), Payload::new("small", 128, 1u8))
            .unwrap();
        b.recv_timeout(Duration::from_secs(5)).unwrap();
        let small = t0.elapsed();

        let t0 = std::time::Instant::now();
        // 900 KiB over 0.9 MB/s ≈ 1 virtual second ≈ 10 ms real.
        net.send(NodeId(0), NodeId(1), Payload::new("big", 900_000, 2u8))
            .unwrap();
        b.recv_timeout(Duration::from_secs(5)).unwrap();
        let big = t0.elapsed();

        assert!(
            big > small + Duration::from_millis(4),
            "big={big:?} small={small:?}"
        );
    }

    #[test]
    fn reregistering_replaces_mailbox() {
        let net = fast_net();
        let old = net.register(NodeId(0));
        let new = net.register(NodeId(0));
        let _src = net.register(NodeId(1));
        net.send(NodeId(1), NodeId(0), Payload::new("x", 1, 7u8))
            .unwrap();
        assert!(new.recv_timeout(Duration::from_secs(2)).is_ok());
        assert!(old.try_recv().is_err());
    }

    #[test]
    fn small_message_cannot_overtake_large_one() {
        // Connection FIFO: a 1 MiB message followed by a tiny one on the
        // same directed pair must arrive first (Java RMI serializes on one
        // TCP connection; see `pair_last`).
        let mut topo = Topology::new();
        topo.set_default_class(LinkClass::Lan10);
        let net = Network::new(SimClock::new(TimeScale::new(1e-4)), topo);
        let _a = net.register(NodeId(0));
        let b = net.register(NodeId(1));
        net.send(NodeId(0), NodeId(1), Payload::new("big", 1 << 20, 1u8))
            .unwrap();
        net.send(NodeId(0), NodeId(1), Payload::new("small", 8, 2u8))
            .unwrap();
        let first = b.recv_timeout(Duration::from_secs(5)).unwrap();
        let second = b.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(*first.payload.downcast::<u8>().unwrap(), 1);
        assert_eq!(*second.payload.downcast::<u8>().unwrap(), 2);
    }

    #[test]
    fn distinct_pairs_do_not_serialize_each_other() {
        // The FIFO applies per directed pair: traffic 2→1 is not delayed by
        // a huge transfer 0→1... at least not by the *connection* model
        // (both still share the destination's mailbox).
        let mut topo = Topology::new();
        topo.set_default_class(LinkClass::Lan10);
        let clock = SimClock::new(TimeScale::new(1e-3));
        let net = Network::new(clock, topo);
        let _a = net.register(NodeId(0));
        let b = net.register(NodeId(1));
        let _c = net.register(NodeId(2));
        net.send(NodeId(0), NodeId(1), Payload::new("big", 4 << 20, 1u8))
            .unwrap(); // ~4.7 virtual s on Lan10 → ~4.7 ms real
        net.send(NodeId(2), NodeId(1), Payload::new("tiny", 8, 2u8))
            .unwrap();
        let first = b.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(
            *first.payload.downcast::<u8>().unwrap(),
            2,
            "cross-pair message should not be blocked by the big transfer"
        );
    }

    #[test]
    fn wan_pair_override_is_much_slower() {
        let mut topo = Topology::new();
        topo.set_default_class(LinkClass::Lan100);
        topo.set_pair_class(NodeId(0), NodeId(1), LinkClass::Wan);
        let clock = SimClock::new(TimeScale::new(1e-3));
        let net = Network::new(clock.clone(), topo);
        let _a = net.register(NodeId(0));
        let b = net.register(NodeId(1));
        let c = net.register(NodeId(2));
        // Min-of-3 per path: scheduler noise only ever inflates timings.
        let lan = (0..3)
            .map(|_| {
                let t0 = std::time::Instant::now();
                net.send(NodeId(0), NodeId(2), Payload::new("lan", 1_000_000, 1u8))
                    .unwrap();
                c.recv_timeout(Duration::from_secs(5)).unwrap();
                t0.elapsed()
            })
            .min()
            .unwrap();
        let wan = (0..3)
            .map(|_| {
                let t0 = std::time::Instant::now();
                net.send(NodeId(0), NodeId(1), Payload::new("wan", 1_000_000, 1u8))
                    .unwrap();
                b.recv_timeout(Duration::from_secs(10)).unwrap();
                t0.elapsed()
            })
            .min()
            .unwrap();
        assert!(wan > lan * 5, "wan={wan:?} lan={lan:?}");
    }

    #[test]
    fn fifo_between_a_pair_for_equal_sizes() {
        let net = fast_net();
        let _a = net.register(NodeId(0));
        let b = net.register(NodeId(1));
        for i in 0..32u32 {
            net.send(NodeId(0), NodeId(1), Payload::new("seq", 8, i))
                .unwrap();
        }
        let mut got = Vec::new();
        for _ in 0..32 {
            let env = b.recv_timeout(Duration::from_secs(2)).unwrap();
            got.push(*env.payload.downcast::<u32>().unwrap());
        }
        assert_eq!(got, (0..32).collect::<Vec<_>>());
    }

    /// Per-pair `(due, seq)` order under concurrent senders and many
    /// stripes: each directed pair's messages must arrive in send order no
    /// matter how the pairs spread over stripe locks. Run for both the
    /// striped and the legacy (1-stripe) layout.
    fn assert_pair_order_with_shards(shards: usize) {
        let mut topo = Topology::new();
        topo.set_default_class(LinkClass::Lan100);
        let net = Network::with_config(
            SimClock::new(TimeScale::new(1e-6)),
            topo,
            NetworkConfig {
                state_shards: shards,
                ..NetworkConfig::default()
            },
        );
        const SENDERS: u32 = 8;
        const MSGS: u32 = 64;
        let receivers: Vec<_> = (0..SENDERS)
            .map(|d| net.register(NodeId(100 + d)))
            .collect();
        let handles: Vec<_> = (0..SENDERS)
            .map(|s| {
                let net = net.clone();
                std::thread::spawn(move || {
                    for i in 0..MSGS {
                        net.send(NodeId(s), NodeId(100 + s), Payload::new("seq", 8, i))
                            .unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        for rx in &receivers {
            let mut got = Vec::new();
            for _ in 0..MSGS {
                let env = rx.recv_timeout(Duration::from_secs(5)).unwrap();
                got.push(*env.payload.downcast::<u32>().unwrap());
            }
            assert_eq!(got, (0..MSGS).collect::<Vec<_>>(), "per-pair order broke");
        }
    }

    #[test]
    fn per_pair_order_holds_across_many_stripes() {
        assert_pair_order_with_shards(64);
    }

    #[test]
    fn per_pair_order_holds_on_legacy_single_stripe() {
        assert_pair_order_with_shards(1);
    }

    #[test]
    fn endpoint_cache_sees_unregister_and_reregister() {
        let net = fast_net();
        let b = net.register(NodeId(1));
        // Prime this thread's cache with a successful lookup.
        net.send(NodeId(0), NodeId(1), Payload::new("x", 8, 1u8))
            .unwrap();
        assert!(b.recv_timeout(Duration::from_secs(2)).is_ok());
        net.unregister(NodeId(1));
        assert!(matches!(
            net.send(NodeId(0), NodeId(1), Payload::new("x", 8, 2u8)),
            Err(SendError::UnknownDestination(NodeId(1)))
        ));
        // Re-register: the generation bump must invalidate the negative
        // entry just as it did the positive one.
        let b2 = net.register(NodeId(1));
        net.send(NodeId(0), NodeId(1), Payload::new("x", 8, 3u8))
            .unwrap();
        let env = b2.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(*env.payload.downcast::<u8>().unwrap(), 3);
        let hot = net.hot_stats();
        assert!(hot.ep_cache_hits + hot.ep_cache_misses > 0);
    }
}

#[cfg(test)]
mod loopback_tests {
    use super::*;
    use crate::{LinkClass, TimeScale};
    use parking_lot::Mutex as PlMutex;
    use std::time::Duration;

    fn fast_net_with(config: NetworkConfig) -> Network {
        let mut topo = Topology::new();
        topo.set_default_class(LinkClass::Lan100);
        Network::with_config(SimClock::new(TimeScale::new(1e-5)), topo, config)
    }

    fn hooked(net: &Network, node: NodeId) -> Arc<PlMutex<Vec<u32>>> {
        let got: Arc<PlMutex<Vec<u32>>> = Arc::new(PlMutex::new(Vec::new()));
        let sink = Arc::clone(&got);
        net.set_local_hook(
            node,
            Arc::new(move |e: Envelope| {
                sink.lock().push(*e.payload.downcast::<u32>().unwrap());
            }),
        );
        got
    }

    fn wait_for(got: &Arc<PlMutex<Vec<u32>>>, expect: &[u32]) {
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while *got.lock() != expect {
            assert!(
                std::time::Instant::now() < deadline,
                "timed out; got {:?}, want {:?}",
                got.lock(),
                expect
            );
            std::thread::yield_now();
        }
    }

    #[test]
    fn fast_path_delivers_inline_before_send_returns() {
        let net = fast_net_with(NetworkConfig::default());
        let rx = net.register(NodeId(0));
        let got = hooked(&net, NodeId(0));
        net.send(NodeId(0), NodeId(0), Payload::new("x", 8, 7u32))
            .unwrap();
        // Synchronous: the hook has already run when send() returns.
        assert_eq!(*got.lock(), vec![7]);
        assert!(rx.try_recv().is_err(), "must not also hit the mailbox");
        let stats = net.stats();
        assert_eq!(stats.msgs_sent, 1);
        assert_eq!(stats.msgs_delivered, 1);
        assert_eq!(stats.bytes_sent, 8);
    }

    #[test]
    fn disabled_fast_path_still_routes_local_sends_through_hook_in_order() {
        let net = fast_net_with(NetworkConfig {
            loopback_fast_path: false,
            ..NetworkConfig::default()
        });
        let rx = net.register(NodeId(0));
        let got = hooked(&net, NodeId(0));
        for i in 0..16u32 {
            net.send(NodeId(0), NodeId(0), Payload::new("seq", 8, i))
                .unwrap();
        }
        wait_for(&got, &(0..16).collect::<Vec<_>>());
        assert!(
            rx.try_recv().is_err(),
            "hooked node must bypass the mailbox"
        );
        assert_eq!(net.stats().msgs_delivered, 16);
    }

    #[test]
    fn local_send_without_hook_uses_mailbox() {
        let net = fast_net_with(NetworkConfig::default());
        let rx = net.register(NodeId(0));
        net.send(NodeId(0), NodeId(0), Payload::new("x", 8, 9u32))
            .unwrap();
        let env = rx.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(*env.payload.downcast::<u32>().unwrap(), 9);
    }

    #[test]
    fn reentrant_local_sends_from_hook_fall_back_and_keep_order() {
        // A hook that sends to its own node while dispatching (the runtime
        // does this when a handler replies synchronously) must neither
        // deadlock nor let the nested messages overtake: the gate is held,
        // so they take the queued path and arrive afterwards, in order.
        let net = fast_net_with(NetworkConfig::default());
        let _rx = net.register(NodeId(0));
        let got: Arc<PlMutex<Vec<u32>>> = Arc::new(PlMutex::new(Vec::new()));
        let sink = Arc::clone(&got);
        let nested_net = net.clone();
        net.set_local_hook(
            NodeId(0),
            Arc::new(move |e: Envelope| {
                let marker = *e.payload.downcast::<u32>().unwrap();
                sink.lock().push(marker);
                if marker == 1 {
                    for m in [2u32, 3] {
                        nested_net
                            .send(NodeId(0), NodeId(0), Payload::new("nested", 8, m))
                            .unwrap();
                    }
                }
            }),
        );
        net.send(NodeId(0), NodeId(0), Payload::new("outer", 8, 1u32))
            .unwrap();
        wait_for(&got, &[1, 2, 3]);
        net.send(NodeId(0), NodeId(0), Payload::new("after", 8, 4u32))
            .unwrap();
        wait_for(&got, &[1, 2, 3, 4]);
        let stats = net.stats();
        assert_eq!(stats.msgs_sent, 4);
        assert_eq!(stats.msgs_delivered, 4);
    }

    #[test]
    fn fast_and_slow_paths_charge_identical_wire_bytes() {
        let run = |fast: bool| {
            let net = fast_net_with(NetworkConfig {
                loopback_fast_path: fast,
                ..NetworkConfig::default()
            });
            let _rx = net.register(NodeId(0));
            let got = hooked(&net, NodeId(0));
            for i in 0..8u32 {
                net.send(
                    NodeId(0),
                    NodeId(0),
                    Payload::new("seq", 100 + i as usize, i),
                )
                .unwrap();
            }
            wait_for(&got, &(0..8).collect::<Vec<_>>());
            let stats = net.stats();
            (stats.msgs_sent, stats.bytes_sent, stats.msgs_delivered)
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn killed_node_rejects_local_sends_and_revives_clean() {
        let net = fast_net_with(NetworkConfig::default());
        let _rx = net.register(NodeId(0));
        let got = hooked(&net, NodeId(0));
        net.kill_node(NodeId(0));
        assert_eq!(
            net.send(NodeId(0), NodeId(0), Payload::new("x", 8, 1u32)),
            Err(SendError::DeadSource(NodeId(0)))
        );
        net.revive_node(NodeId(0));
        net.send(NodeId(0), NodeId(0), Payload::new("x", 8, 2u32))
            .unwrap();
        wait_for(&got, &[2]);
    }
}

#[cfg(test)]
mod shared_segment_tests {
    use super::*;
    use crate::{LinkClass, TimeScale};
    use std::time::Duration;

    fn shared_net() -> Network {
        let mut topo = Topology::new();
        topo.set_default_class(LinkClass::Lan10);
        Network::with_config(
            SimClock::new(TimeScale::new(1e-3)),
            topo,
            NetworkConfig {
                shared_segments: vec![LinkClass::Lan10],
                ..NetworkConfig::default()
            },
        )
    }

    #[test]
    fn shared_segment_serializes_across_pairs() {
        // Two big transfers on DIFFERENT pairs of a shared 10 Mbit segment
        // must take about twice as long as one (they cannot overlap).
        let net = shared_net();
        let _a = net.register(NodeId(0));
        let _c = net.register(NodeId(2));
        let b = net.register(NodeId(1));
        let d = net.register(NodeId(3));
        let t0 = std::time::Instant::now();
        // ~1 virtual s each on Lan10 (0.9 MB/s).
        net.send(NodeId(0), NodeId(1), Payload::new("x", 900_000, 1u8))
            .unwrap();
        net.send(NodeId(2), NodeId(3), Payload::new("y", 900_000, 2u8))
            .unwrap();
        b.recv_timeout(Duration::from_secs(10)).unwrap();
        d.recv_timeout(Duration::from_secs(10)).unwrap();
        let both = t0.elapsed();
        // Two serialized 1-virtual-s transfers at 1e-3 ⇒ ≥ ~2 ms real.
        assert!(
            both >= Duration::from_micros(1900),
            "shared segment did not serialize: {both:?}"
        );
    }

    #[test]
    fn switched_segment_overlaps_across_pairs() {
        // Same experiment without the shared flag: the transfers overlap
        // and complete in about one transmission time.
        let mut topo = Topology::new();
        topo.set_default_class(LinkClass::Lan10);
        let net = Network::new(SimClock::new(TimeScale::new(1e-3)), topo);
        let _a = net.register(NodeId(0));
        let _c = net.register(NodeId(2));
        let b = net.register(NodeId(1));
        let d = net.register(NodeId(3));
        // Min-of-3: scheduler noise on a loaded host only inflates timings.
        let both = (0..3)
            .map(|_| {
                let t0 = std::time::Instant::now();
                net.send(NodeId(0), NodeId(1), Payload::new("x", 900_000, 1u8))
                    .unwrap();
                net.send(NodeId(2), NodeId(3), Payload::new("y", 900_000, 2u8))
                    .unwrap();
                b.recv_timeout(Duration::from_secs(10)).unwrap();
                d.recv_timeout(Duration::from_secs(10)).unwrap();
                t0.elapsed()
            })
            .min()
            .unwrap();
        assert!(
            both < Duration::from_micros(1800),
            "switched pairs should overlap: {both:?}"
        );
    }

    #[test]
    fn fast_segment_unaffected_by_slow_shared_one() {
        let mut topo = Topology::new();
        topo.set_default_class(LinkClass::Lan10);
        topo.set_node_class(NodeId(4), LinkClass::Lan100);
        topo.set_node_class(NodeId(5), LinkClass::Lan100);
        let net = Network::with_config(
            SimClock::new(TimeScale::new(1e-3)),
            topo,
            NetworkConfig {
                shared_segments: vec![LinkClass::Lan10],
                ..NetworkConfig::default()
            },
        );
        let _a = net.register(NodeId(0));
        let b = net.register(NodeId(1));
        let _e = net.register(NodeId(4));
        let f = net.register(NodeId(5));
        // Saturate the shared slow segment...
        net.send(NodeId(0), NodeId(1), Payload::new("slow", 2_000_000, 1u8))
            .unwrap();
        // ...while a fast-segment message goes through immediately.
        let t0 = std::time::Instant::now();
        net.send(NodeId(4), NodeId(5), Payload::new("fast", 1000, 2u8))
            .unwrap();
        f.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(t0.elapsed() < Duration::from_millis(2));
        b.recv_timeout(Duration::from_secs(10)).unwrap();
    }
}

#[cfg(test)]
mod batched_tests {
    use super::*;
    use crate::{LinkClass, TimeScale};
    use std::time::Duration;

    /// At the 1e-5 scale a tight send loop spans whole virtual seconds, so
    /// coalescing tests use windows of tens of virtual seconds (hundreds of
    /// real microseconds) to be sure every send joins the open batch.
    fn batched_net(batch: BatchConfig, obs: jsym_obs::ObsRegistry) -> Network {
        let mut topo = Topology::new();
        topo.set_default_class(LinkClass::Lan100);
        Network::with_obs(
            SimClock::new(TimeScale::new(1e-5)),
            topo,
            NetworkConfig {
                batching: Some(batch),
                ..NetworkConfig::default()
            },
            obs,
        )
    }

    #[test]
    fn adaptive_window_tracks_pair_gaps() {
        let net = batched_net(
            BatchConfig {
                flush_window: 1.0,
                max_bytes: 1 << 20,
                adaptive: true,
                compression: 1.0,
            },
            jsym_obs::ObsRegistry::disabled(),
        );
        let stage = net.batching.as_ref().expect("batching on");
        let chatty = (NodeId(0), NodeId(1));
        let sparse = (NodeId(0), NodeId(2));
        // First send of a pair gets the full window.
        assert_eq!(stage.adaptive_window(chatty, 0.0), 1.0);
        // A chatty pair (1 ms gaps) converges onto the floor, window/16.
        let mut t = 0.0;
        let mut w = 1.0;
        for _ in 0..60 {
            t += 1e-3;
            w = stage.adaptive_window(chatty, t);
        }
        assert!((w - 1.0 / 16.0).abs() < 1e-9, "chatty window {w}");
        // A sparse pair (10 s gaps) keeps the full-window ceiling.
        assert_eq!(stage.adaptive_window(sparse, 0.0), 1.0);
        assert_eq!(stage.adaptive_window(sparse, 10.0), 1.0);
        assert_eq!(stage.adaptive_window(sparse, 20.0), 1.0);
    }

    #[test]
    fn adaptive_batching_preserves_member_order() {
        let net = batched_net(
            BatchConfig {
                // ~500 µs real at this scale.
                flush_window: 50.0,
                max_bytes: 1 << 20,
                adaptive: true,
                compression: 1.0,
            },
            jsym_obs::ObsRegistry::disabled(),
        );
        let _a = net.register(NodeId(0));
        let b = net.register(NodeId(1));
        for i in 0u32..16 {
            net.send(NodeId(0), NodeId(1), Payload::new("m", 64, i))
                .unwrap();
        }
        let mut got = Vec::new();
        while got.len() < 16 {
            let env = b.recv_timeout(Duration::from_secs(5)).expect("delivered");
            got.push(*env.payload.downcast::<u32>().unwrap());
        }
        assert_eq!(got, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn hook_routed_mode_delivers_remote_traffic_via_hook() {
        let mut topo = Topology::new();
        topo.set_default_class(LinkClass::Lan100);
        let net = Network::with_obs(
            SimClock::new(TimeScale::new(1e-5)),
            topo,
            NetworkConfig {
                deliver_via_hook: true,
                ..NetworkConfig::default()
            },
            jsym_obs::ObsRegistry::disabled(),
        );
        let got: Arc<parking_lot::Mutex<Vec<u32>>> = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let sink = Arc::clone(&got);
        // Hook first, then register: the executor runtime's ordering.
        net.set_local_hook(
            NodeId(1),
            Arc::new(move |env: Envelope| {
                sink.lock().push(*env.payload.downcast::<u32>().unwrap());
            }),
        );
        let mailbox = net.register(NodeId(1));
        let _src = net.register(NodeId(0));
        for i in 0u32..8 {
            net.send(NodeId(0), NodeId(1), Payload::new("m", 64, i))
                .unwrap();
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while got.lock().len() < 8 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(*got.lock(), (0..8).collect::<Vec<_>>());
        // Nothing may have landed in the mailbox channel.
        assert!(mailbox.try_recv().is_err());
        assert_eq!(net.stats().msgs_delivered, 8);
    }

    #[test]
    fn coalesced_batch_delivers_members_individually_in_order() {
        let obs = jsym_obs::ObsRegistry::new();
        let net = batched_net(
            BatchConfig {
                flush_window: 50.0,
                max_bytes: 1 << 20,
                adaptive: false,
                compression: 1.0,
            },
            obs.clone(),
        );
        let _a = net.register(NodeId(0));
        let b = net.register(NodeId(1));
        for i in 0..8u32 {
            net.send(NodeId(0), NodeId(1), Payload::new("seq", 100, i))
                .unwrap();
        }
        let mut got = Vec::new();
        for _ in 0..8 {
            let env = b.recv_timeout(Duration::from_secs(5)).unwrap();
            // Receivers observe the member envelopes, never the wrapper.
            assert_eq!(env.payload.tag(), "seq");
            assert_eq!(env.payload.wire_bytes(), 100);
            got.push(*env.payload.downcast::<u32>().unwrap());
        }
        assert_eq!(got, (0..8).collect::<Vec<_>>());
        let stats = net.stats();
        assert_eq!(stats.msgs_sent, 8);
        assert_eq!(stats.msgs_delivered, 8);
        assert_eq!(stats.bytes_sent, 800);
        let snap = obs.snapshot();
        assert_eq!(snap.metrics.counter_total("net.batch.coalesced"), 7);
        assert_eq!(snap.metrics.counter_total("net.batch.flushed"), 1);
        assert_eq!(snap.metrics.counter_total("net.batch.msgs"), 8);
        assert!(snap.metrics.counter_total("net.batch.bytes_saved") > 0);
    }

    #[test]
    fn max_bytes_overflow_flushes_without_waiting_the_window() {
        let obs = jsym_obs::ObsRegistry::new();
        // The window is hours of real time: only the overflow path can
        // deliver within the recv timeout.
        let net = batched_net(
            BatchConfig {
                flush_window: 1e9,
                max_bytes: 256,
                adaptive: false,
                compression: 1.0,
            },
            obs.clone(),
        );
        let _a = net.register(NodeId(0));
        let b = net.register(NodeId(1));
        for i in 0..3u32 {
            net.send(NodeId(0), NodeId(1), Payload::new("seq", 100, i))
                .unwrap();
        }
        for i in 0..3u32 {
            let env = b.recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(*env.payload.downcast::<u32>().unwrap(), i);
        }
        let snap = obs.snapshot();
        assert_eq!(
            snap.metrics.counters[&jsym_obs::MetricKey::new("net.batch.flushed", Some(0), "bytes")],
            1
        );
    }

    #[test]
    fn compression_stretches_overflow_and_counts_charged_bytes() {
        let obs = jsym_obs::ObsRegistry::new();
        // Uncompressed, three 100-byte messages overflow max_bytes = 256
        // (see the test above). At ratio 0.5 the modeled wire size only
        // crosses 256 at six messages — the batch must keep coalescing
        // until then (the window is hours of real time, so only the
        // overflow path can deliver within the recv timeout).
        let net = batched_net(
            BatchConfig {
                flush_window: 1e9,
                max_bytes: 256,
                adaptive: false,
                compression: 0.5,
            },
            obs.clone(),
        );
        let _a = net.register(NodeId(0));
        let b = net.register(NodeId(1));
        for i in 0..6u32 {
            net.send(NodeId(0), NodeId(1), Payload::new("seq", 100, i))
                .unwrap();
        }
        for i in 0..6u32 {
            let env = b.recv_timeout(Duration::from_secs(5)).unwrap();
            // Member envelopes keep their uncompressed declared sizes.
            assert_eq!(env.payload.wire_bytes(), 100);
            assert_eq!(*env.payload.downcast::<u32>().unwrap(), i);
        }
        let snap = obs.snapshot();
        assert_eq!(
            snap.metrics.counters[&jsym_obs::MetricKey::new("net.batch.flushed", Some(0), "bytes")],
            1,
            "one overflow flush of all six members"
        );
        assert_eq!(snap.metrics.counter_total("net.batch.msgs"), 6);
        // Modeled post-compression wire bytes: 600 payload bytes at 0.5.
        assert_eq!(
            snap.metrics.counter_total("net.batch.compressed_bytes"),
            300
        );
        // Stats attribution stays uncompressed.
        assert_eq!(net.stats().bytes_sent, 600);
    }

    #[test]
    fn oversized_lone_message_skips_the_window() {
        let net = batched_net(
            BatchConfig {
                flush_window: 1e9,
                max_bytes: 256,
                adaptive: false,
                compression: 1.0,
            },
            jsym_obs::ObsRegistry::disabled(),
        );
        let _a = net.register(NodeId(0));
        let b = net.register(NodeId(1));
        net.send(NodeId(0), NodeId(1), Payload::new("big", 4096, 9u32))
            .unwrap();
        let env = b.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(*env.payload.downcast::<u32>().unwrap(), 9);
    }

    #[test]
    fn window_timer_flushes_an_idle_batch() {
        let net = batched_net(
            BatchConfig {
                // ~200 µs real at this scale.
                flush_window: 20.0,
                max_bytes: 1 << 20,
                adaptive: false,
                compression: 1.0,
            },
            jsym_obs::ObsRegistry::disabled(),
        );
        let _a = net.register(NodeId(0));
        let b = net.register(NodeId(1));
        net.send(NodeId(0), NodeId(1), Payload::new("one", 64, 1u32))
            .unwrap();
        // No further sends: only the timer can flush this batch.
        let env = b.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(*env.payload.downcast::<u32>().unwrap(), 1);
    }

    #[test]
    fn batched_and_unbatched_totals_and_transcripts_match() {
        let run = |batch: Option<BatchConfig>| {
            let mut topo = Topology::new();
            topo.set_default_class(LinkClass::Lan100);
            let net = Network::with_config(
                SimClock::new(TimeScale::new(1e-5)),
                topo,
                NetworkConfig {
                    batching: batch,
                    ..NetworkConfig::default()
                },
            );
            let a = net.register(NodeId(0));
            let b = net.register(NodeId(1));
            for i in 0..6u32 {
                net.send(
                    NodeId(0),
                    NodeId(1),
                    Payload::new("fwd", 50 + i as usize, i),
                )
                .unwrap();
                net.send(NodeId(1), NodeId(0), Payload::new("bwd", 10, 100 + i))
                    .unwrap();
            }
            let mut fwd = Vec::new();
            let mut bwd = Vec::new();
            for _ in 0..6 {
                fwd.push(
                    *b.recv_timeout(Duration::from_secs(5))
                        .unwrap()
                        .payload
                        .downcast::<u32>()
                        .unwrap(),
                );
                bwd.push(
                    *a.recv_timeout(Duration::from_secs(5))
                        .unwrap()
                        .payload
                        .downcast::<u32>()
                        .unwrap(),
                );
            }
            let stats = net.stats();
            (
                fwd,
                bwd,
                stats.msgs_sent,
                stats.bytes_sent,
                stats.msgs_delivered,
            )
        };
        assert_eq!(
            run(Some(BatchConfig {
                flush_window: 50.0,
                max_bytes: 1 << 20,
                adaptive: false,
                compression: 1.0,
            })),
            run(None)
        );
    }

    #[test]
    fn killed_destination_drops_batch_members_at_delivery() {
        let net = batched_net(
            BatchConfig {
                // ~1 ms real: long enough to kill the node first.
                flush_window: 100.0,
                max_bytes: 1 << 20,
                adaptive: false,
                compression: 1.0,
            },
            jsym_obs::ObsRegistry::disabled(),
        );
        let _a = net.register(NodeId(0));
        let b = net.register(NodeId(1));
        net.send(NodeId(0), NodeId(1), Payload::new("x", 100, 1u32))
            .unwrap();
        net.send(NodeId(0), NodeId(1), Payload::new("x", 100, 2u32))
            .unwrap();
        net.kill_node(NodeId(1));
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while net.stats().msgs_dropped < 2 {
            assert!(
                std::time::Instant::now() < deadline,
                "members not dropped: {:?}",
                net.stats()
            );
            std::thread::yield_now();
        }
        assert!(b.try_recv().is_err());
        assert_eq!(net.stats().msgs_delivered, 0);
    }
}
