//! The simulated network itself.

use crate::queue::DelayQueue;
use crate::{
    Envelope, EndpointStatsSnapshot, LinkClass, NetStats, NetStatsSnapshot, NodeId, Payload,
    SimClock, Topology,
};
use jsym_obs::{bounds, ObsRegistry};
use crossbeam::channel::{Receiver, Sender};
use parking_lot::RwLock;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

/// Why a send was rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SendError {
    /// Destination node was never registered or has unregistered.
    UnknownDestination(NodeId),
    /// Destination node has been killed by failure injection.
    DeadDestination(NodeId),
    /// Source node has been killed by failure injection.
    DeadSource(NodeId),
    /// The pair is currently partitioned.
    Partitioned(NodeId, NodeId),
}

impl fmt::Display for SendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SendError::UnknownDestination(n) => write!(f, "unknown destination {n}"),
            SendError::DeadDestination(n) => write!(f, "destination {n} is dead"),
            SendError::DeadSource(n) => write!(f, "source {n} is dead"),
            SendError::Partitioned(a, b) => write!(f, "{a} and {b} are partitioned"),
        }
    }
}

impl std::error::Error for SendError {}

/// Tunables for a [`Network`].
#[derive(Clone, Debug)]
pub struct NetworkConfig {
    /// Per-endpoint mailbox capacity. Sends beyond it block the delivery
    /// thread, providing crude back-pressure; the default is large enough
    /// that experiments never hit it.
    pub mailbox_capacity: usize,
    /// Link classes modeled as a *shared medium*: at most one transmission
    /// at a time across the whole segment, like the hubbed 10 Mbit/s
    /// Ethernet of the paper's testbed (as opposed to switched per-pair
    /// capacity). Empty by default — per-pair links only.
    pub shared_segments: Vec<crate::LinkClass>,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            mailbox_capacity: 4096,
            shared_segments: Vec::new(),
        }
    }
}

struct Routing {
    endpoints: RwLock<HashMap<NodeId, Sender<Envelope>>>,
    dead: RwLock<HashSet<NodeId>>,
    partitions: RwLock<HashSet<(NodeId, NodeId)>>,
    stats: NetStats,
    obs: ObsRegistry,
}

impl Routing {
    fn pair_key(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    fn drop_env(&self, env: &Envelope) {
        self.stats
            .record_drop(env.src, env.dst, env.payload.wire_bytes());
        if self.obs.is_enabled() {
            self.obs.counter("net.dropped", Some(env.dst.0), "").inc();
        }
    }

    fn deliver(&self, env: Envelope) {
        // Conditions are re-checked at delivery time: a node killed while a
        // message is in flight must not receive it.
        if self.dead.read().contains(&env.dst) || self.dead.read().contains(&env.src) {
            self.drop_env(&env);
            return;
        }
        if self
            .partitions
            .read()
            .contains(&Self::pair_key(env.src, env.dst))
        {
            self.drop_env(&env);
            return;
        }
        let sender = self.endpoints.read().get(&env.dst).cloned();
        match sender {
            Some(tx) => {
                let (dst, bytes) = (env.dst, env.payload.wire_bytes());
                match tx.send(env) {
                    Ok(()) => self.stats.record_delivery(dst, bytes),
                    Err(e) => self.drop_env(&e.0),
                }
            }
            None => self.drop_env(&env),
        }
    }
}

/// An in-process simulated network.
///
/// Cloning shares the same network. Endpoints are registered per node; sends
/// are charged the link's latency + transmission delay and delivered by a
/// background thread.
#[derive(Clone)]
pub struct Network {
    clock: SimClock,
    topo: Arc<RwLock<Topology>>,
    routing: Arc<Routing>,
    queue: Arc<parking_lot::Mutex<DelayQueue>>,
    /// Last scheduled arrival (virtual time) per directed node pair,
    /// enforcing connection-FIFO ordering.
    pair_last: Arc<parking_lot::Mutex<HashMap<(NodeId, NodeId), f64>>>,
    /// Last scheduled arrival per shared segment (see
    /// [`NetworkConfig::shared_segments`]).
    segment_last: Arc<parking_lot::Mutex<HashMap<crate::LinkClass, f64>>>,
    config: NetworkConfig,
}

impl Network {
    /// Creates a network over `topo` driven by `clock`.
    pub fn new(clock: SimClock, topo: Topology) -> Self {
        Self::with_config(clock, topo, NetworkConfig::default())
    }

    /// Creates a network with explicit tunables.
    pub fn with_config(clock: SimClock, topo: Topology, config: NetworkConfig) -> Self {
        Self::with_obs(clock, topo, config, ObsRegistry::disabled())
    }

    /// Creates a network with explicit tunables and an observability scope.
    /// An enabled `obs` gets per-link `net.bytes`/`net.latency` histograms
    /// and `net.dropped`/`net.rejected` counters on top of [`NetStats`].
    pub fn with_obs(
        clock: SimClock,
        topo: Topology,
        config: NetworkConfig,
        obs: ObsRegistry,
    ) -> Self {
        let routing = Arc::new(Routing {
            endpoints: RwLock::new(HashMap::new()),
            dead: RwLock::new(HashSet::new()),
            partitions: RwLock::new(HashSet::new()),
            stats: NetStats::default(),
            obs,
        });
        let deliver_routing = Arc::clone(&routing);
        let queue = DelayQueue::start(Box::new(move |env| deliver_routing.deliver(env)));
        Network {
            clock,
            topo: Arc::new(RwLock::new(topo)),
            routing,
            queue: Arc::new(parking_lot::Mutex::new(queue)),
            pair_last: Arc::new(parking_lot::Mutex::new(HashMap::new())),
            segment_last: Arc::new(parking_lot::Mutex::new(HashMap::new())),
            config,
        }
    }

    /// Registers (or re-registers) the endpoint for `node`, returning its
    /// mailbox. Re-registering replaces the previous mailbox and clears any
    /// dead flag (a node rejoining the cluster).
    pub fn register(&self, node: NodeId) -> Receiver<Envelope> {
        let (tx, rx) = crossbeam::channel::bounded(self.config.mailbox_capacity);
        self.routing.endpoints.write().insert(node, tx);
        self.routing.dead.write().remove(&node);
        rx
    }

    /// Removes the endpoint for `node`; in-flight messages to it are dropped.
    pub fn unregister(&self, node: NodeId) {
        self.routing.endpoints.write().remove(&node);
    }

    fn reject(&self, src: NodeId, bytes: usize, err: SendError) -> SendError {
        self.routing.stats.record_rejection(src, bytes);
        if self.routing.obs.is_enabled() {
            self.routing
                .obs
                .counter("net.rejected", Some(src.0), "")
                .inc();
        }
        err
    }

    /// Sends `payload` from `src` to `dst`, paying the modeled delay.
    ///
    /// Refused sends (dead node, partition, unknown destination) are counted
    /// as rejections against `src` in [`NetStats`].
    pub fn send(&self, src: NodeId, dst: NodeId, payload: Payload) -> Result<(), SendError> {
        let bytes = payload.wire_bytes();
        {
            let dead = self.routing.dead.read();
            if dead.contains(&src) {
                return Err(self.reject(src, bytes, SendError::DeadSource(src)));
            }
            if dead.contains(&dst) {
                return Err(self.reject(src, bytes, SendError::DeadDestination(dst)));
            }
        }
        if self
            .routing
            .partitions
            .read()
            .contains(&Routing::pair_key(src, dst))
        {
            return Err(self.reject(src, bytes, SendError::Partitioned(src, dst)));
        }
        if !self.routing.endpoints.read().contains_key(&dst) {
            return Err(self.reject(src, bytes, SendError::UnknownDestination(dst)));
        }
        let now = self.clock.now();
        let (link, latency, tx_time) = {
            let topo = self.topo.read();
            let link = topo.link_between(src, dst);
            (
                link,
                link.latency(),
                link.transfer_time(payload.wire_bytes()),
            )
        };
        self.routing.stats.record_send(src, payload.wire_bytes());
        if self.routing.obs.is_enabled() {
            let obs = &self.routing.obs;
            let name = link_name(link);
            obs.histogram("net.bytes", Some(src.0), name, bounds::SIZE_BYTES)
                .observe(bytes as f64);
            obs.histogram("net.latency", Some(src.0), name, bounds::LATENCY_SECONDS)
                .observe(latency + tx_time);
        }
        let env = Envelope {
            src,
            dst,
            sent_at: now,
            payload,
        };
        // Per-ordered-pair FIFO with serialized transmission: Java RMI
        // multiplexes one TCP connection per agent pair, so a later (small)
        // message can neither overtake an earlier (large) one nor start
        // transmitting before it has finished. A shared segment additionally
        // serializes transmissions across *all* of its pairs.
        let arrival = {
            let mut last = self.pair_last.lock();
            let prev = last.get(&(src, dst)).copied().unwrap_or(0.0);
            let mut start = (now + latency).max(prev);
            let shared = self.config.shared_segments.contains(&link);
            if shared {
                let seg = self.segment_last.lock();
                if let Some(&busy_until) = seg.get(&link) {
                    start = start.max(busy_until);
                }
            }
            let arrival = start + tx_time;
            last.insert((src, dst), arrival);
            if shared {
                self.segment_last.lock().insert(link, arrival);
            }
            arrival
        };
        let due = self.clock.real_deadline(arrival);
        self.queue.lock().push(due, env);
        Ok(())
    }

    /// Kills `node`: future sends to/from it fail and in-flight messages are
    /// dropped at delivery time. Used by the fault-tolerance experiments.
    pub fn kill_node(&self, node: NodeId) {
        self.routing.dead.write().insert(node);
    }

    /// Revives a previously killed node (its endpoint must be re-registered).
    pub fn revive_node(&self, node: NodeId) {
        self.routing.dead.write().remove(&node);
    }

    /// Whether `node` is currently marked dead.
    pub fn is_dead(&self, node: NodeId) -> bool {
        self.routing.dead.read().contains(&node)
    }

    /// Blocks traffic between `a` and `b` (both directions).
    pub fn partition(&self, a: NodeId, b: NodeId) {
        self.routing
            .partitions
            .write()
            .insert(Routing::pair_key(a, b));
    }

    /// Heals a previous [`Network::partition`].
    pub fn heal(&self, a: NodeId, b: NodeId) {
        self.routing
            .partitions
            .write()
            .remove(&Routing::pair_key(a, b));
    }

    /// The clock driving this network.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Read access to the topology (e.g. for cost estimation).
    pub fn topology(&self) -> Arc<RwLock<Topology>> {
        Arc::clone(&self.topo)
    }

    /// Snapshot of the traffic counters.
    pub fn stats(&self) -> NetStatsSnapshot {
        self.routing.stats.snapshot()
    }

    /// Per-endpoint traffic snapshots, sorted by node id.
    pub fn endpoint_stats(&self) -> Vec<EndpointStatsSnapshot> {
        self.routing.stats.per_endpoint()
    }

    /// Stops the delivery thread, discarding in-flight messages. Further
    /// sends are silently queued nowhere; intended for deployment teardown.
    pub fn shutdown(&self) {
        self.queue.lock().shutdown();
    }
}

/// Stable component label for a link class, used as the metrics key.
fn link_name(link: LinkClass) -> &'static str {
    match link {
        LinkClass::Loopback => "loopback",
        LinkClass::Lan100 => "lan100",
        LinkClass::Lan10 => "lan10",
        LinkClass::Wan => "wan",
    }
}

impl fmt::Debug for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Network")
            .field("endpoints", &self.routing.endpoints.read().len())
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LinkClass, TimeScale};
    use std::time::Duration;

    fn fast_net() -> Network {
        let mut topo = Topology::new();
        topo.set_default_class(LinkClass::Lan100);
        Network::new(SimClock::new(TimeScale::new(1e-5)), topo)
    }

    #[test]
    fn round_trip_delivery() {
        let net = fast_net();
        let _a = net.register(NodeId(0));
        let b = net.register(NodeId(1));
        net.send(NodeId(0), NodeId(1), Payload::new("hi", 64, 123u32))
            .unwrap();
        let env = b.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(env.src, NodeId(0));
        assert_eq!(*env.payload.downcast::<u32>().unwrap(), 123);
        let stats = net.stats();
        assert_eq!(stats.msgs_sent, 1);
        assert_eq!(stats.msgs_delivered, 1);
        assert_eq!(stats.bytes_sent, 64);
    }

    #[test]
    fn unknown_destination_rejected() {
        let net = fast_net();
        let _a = net.register(NodeId(0));
        let err = net
            .send(NodeId(0), NodeId(9), Payload::new("x", 1, ()))
            .unwrap_err();
        assert_eq!(err, SendError::UnknownDestination(NodeId(9)));
    }

    #[test]
    fn dead_node_rejects_sends_both_ways() {
        let net = fast_net();
        let _a = net.register(NodeId(0));
        let _b = net.register(NodeId(1));
        net.kill_node(NodeId(1));
        assert!(net.is_dead(NodeId(1)));
        assert_eq!(
            net.send(NodeId(0), NodeId(1), Payload::new("x", 1, ())),
            Err(SendError::DeadDestination(NodeId(1)))
        );
        assert_eq!(
            net.send(NodeId(1), NodeId(0), Payload::new("x", 1, ())),
            Err(SendError::DeadSource(NodeId(1)))
        );
        net.revive_node(NodeId(1));
        assert!(net
            .send(NodeId(0), NodeId(1), Payload::new("x", 1, ()))
            .is_ok());
    }

    #[test]
    fn kill_drops_in_flight_messages() {
        // Use a big payload over a slow link so the message is in flight long
        // enough to kill the destination underneath it.
        let mut topo = Topology::new();
        topo.set_default_class(LinkClass::Lan10);
        let net = Network::new(SimClock::new(TimeScale::new(1e-3)), topo);
        let _a = net.register(NodeId(0));
        let b = net.register(NodeId(1));
        net.send(NodeId(0), NodeId(1), Payload::new("big", 1 << 20, ()))
            .unwrap();
        net.kill_node(NodeId(1));
        assert!(b.recv_timeout(Duration::from_millis(1500)).is_err());
        assert_eq!(net.stats().msgs_dropped, 1);
    }

    #[test]
    fn refused_sends_are_counted_as_rejections() {
        let net = fast_net();
        let _a = net.register(NodeId(0));
        let _b = net.register(NodeId(1));
        net.partition(NodeId(0), NodeId(1));
        let _ = net.send(NodeId(0), NodeId(1), Payload::new("x", 10, ()));
        let _ = net.send(NodeId(0), NodeId(9), Payload::new("x", 5, ()));
        let stats = net.stats();
        assert_eq!(stats.msgs_rejected, 2);
        assert_eq!(stats.msgs_sent, 0);
        let eps = net.endpoint_stats();
        let n0 = eps.iter().find(|e| e.node == NodeId(0)).unwrap();
        assert_eq!(n0.rejected_msgs, 2);
        assert_eq!(n0.rejected_bytes, 15);
    }

    #[test]
    fn obs_records_link_histograms_and_drop_counters() {
        let mut topo = Topology::new();
        topo.set_default_class(LinkClass::Lan100);
        let obs = jsym_obs::ObsRegistry::new();
        let net = Network::with_obs(
            SimClock::new(TimeScale::new(1e-5)),
            topo,
            NetworkConfig::default(),
            obs.clone(),
        );
        let _a = net.register(NodeId(0));
        let b = net.register(NodeId(1));
        net.send(NodeId(0), NodeId(1), Payload::new("hi", 64, ()))
            .unwrap();
        b.recv_timeout(Duration::from_secs(2)).unwrap();
        net.partition(NodeId(0), NodeId(1));
        let _ = net.send(NodeId(0), NodeId(1), Payload::new("no", 8, ()));
        let snap = obs.snapshot();
        let h = &snap.metrics.histograms
            [&jsym_obs::MetricKey::new("net.bytes", Some(0), "lan100")];
        assert_eq!(h.count, 1);
        assert_eq!(h.sum, 64.0);
        assert!(snap
            .metrics
            .histograms
            .contains_key(&jsym_obs::MetricKey::new("net.latency", Some(0), "lan100")));
        assert_eq!(snap.metrics.counter_total("net.rejected"), 1);
    }

    #[test]
    fn partition_blocks_and_heals() {
        let net = fast_net();
        let _a = net.register(NodeId(0));
        let b = net.register(NodeId(1));
        net.partition(NodeId(0), NodeId(1));
        assert_eq!(
            net.send(NodeId(0), NodeId(1), Payload::new("x", 1, ())),
            Err(SendError::Partitioned(NodeId(0), NodeId(1)))
        );
        net.heal(NodeId(0), NodeId(1));
        net.send(NodeId(0), NodeId(1), Payload::new("x", 1, ()))
            .unwrap();
        assert!(b.recv_timeout(Duration::from_secs(2)).is_ok());
    }

    #[test]
    fn larger_messages_take_longer() {
        let mut topo = Topology::new();
        topo.set_default_class(LinkClass::Lan10);
        // 1 virtual second = 10 ms real.
        let clock = SimClock::new(TimeScale::new(1e-2));
        let net = Network::new(clock.clone(), topo);
        let _a = net.register(NodeId(0));
        let b = net.register(NodeId(1));

        let t0 = std::time::Instant::now();
        net.send(NodeId(0), NodeId(1), Payload::new("small", 128, 1u8))
            .unwrap();
        b.recv_timeout(Duration::from_secs(5)).unwrap();
        let small = t0.elapsed();

        let t0 = std::time::Instant::now();
        // 900 KiB over 0.9 MB/s ≈ 1 virtual second ≈ 10 ms real.
        net.send(NodeId(0), NodeId(1), Payload::new("big", 900_000, 2u8))
            .unwrap();
        b.recv_timeout(Duration::from_secs(5)).unwrap();
        let big = t0.elapsed();

        assert!(
            big > small + Duration::from_millis(4),
            "big={big:?} small={small:?}"
        );
    }

    #[test]
    fn reregistering_replaces_mailbox() {
        let net = fast_net();
        let old = net.register(NodeId(0));
        let new = net.register(NodeId(0));
        let _src = net.register(NodeId(1));
        net.send(NodeId(1), NodeId(0), Payload::new("x", 1, 7u8))
            .unwrap();
        assert!(new.recv_timeout(Duration::from_secs(2)).is_ok());
        assert!(old.try_recv().is_err());
    }

    #[test]
    fn small_message_cannot_overtake_large_one() {
        // Connection FIFO: a 1 MiB message followed by a tiny one on the
        // same directed pair must arrive first (Java RMI serializes on one
        // TCP connection; see `pair_last`).
        let mut topo = Topology::new();
        topo.set_default_class(LinkClass::Lan10);
        let net = Network::new(SimClock::new(TimeScale::new(1e-4)), topo);
        let _a = net.register(NodeId(0));
        let b = net.register(NodeId(1));
        net.send(NodeId(0), NodeId(1), Payload::new("big", 1 << 20, 1u8))
            .unwrap();
        net.send(NodeId(0), NodeId(1), Payload::new("small", 8, 2u8))
            .unwrap();
        let first = b.recv_timeout(Duration::from_secs(5)).unwrap();
        let second = b.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(*first.payload.downcast::<u8>().unwrap(), 1);
        assert_eq!(*second.payload.downcast::<u8>().unwrap(), 2);
    }

    #[test]
    fn distinct_pairs_do_not_serialize_each_other() {
        // The FIFO applies per directed pair: traffic 2→1 is not delayed by
        // a huge transfer 0→1... at least not by the *connection* model
        // (both still share the destination's mailbox).
        let mut topo = Topology::new();
        topo.set_default_class(LinkClass::Lan10);
        let clock = SimClock::new(TimeScale::new(1e-3));
        let net = Network::new(clock, topo);
        let _a = net.register(NodeId(0));
        let b = net.register(NodeId(1));
        let _c = net.register(NodeId(2));
        net.send(NodeId(0), NodeId(1), Payload::new("big", 4 << 20, 1u8))
            .unwrap(); // ~4.7 virtual s on Lan10 → ~4.7 ms real
        net.send(NodeId(2), NodeId(1), Payload::new("tiny", 8, 2u8))
            .unwrap();
        let first = b.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(
            *first.payload.downcast::<u8>().unwrap(),
            2,
            "cross-pair message should not be blocked by the big transfer"
        );
    }

    #[test]
    fn wan_pair_override_is_much_slower() {
        let mut topo = Topology::new();
        topo.set_default_class(LinkClass::Lan100);
        topo.set_pair_class(NodeId(0), NodeId(1), LinkClass::Wan);
        let clock = SimClock::new(TimeScale::new(1e-3));
        let net = Network::new(clock.clone(), topo);
        let _a = net.register(NodeId(0));
        let b = net.register(NodeId(1));
        let c = net.register(NodeId(2));
        // Min-of-3 per path: scheduler noise only ever inflates timings.
        let lan = (0..3)
            .map(|_| {
                let t0 = std::time::Instant::now();
                net.send(NodeId(0), NodeId(2), Payload::new("lan", 1_000_000, 1u8))
                    .unwrap();
                c.recv_timeout(Duration::from_secs(5)).unwrap();
                t0.elapsed()
            })
            .min()
            .unwrap();
        let wan = (0..3)
            .map(|_| {
                let t0 = std::time::Instant::now();
                net.send(NodeId(0), NodeId(1), Payload::new("wan", 1_000_000, 1u8))
                    .unwrap();
                b.recv_timeout(Duration::from_secs(10)).unwrap();
                t0.elapsed()
            })
            .min()
            .unwrap();
        assert!(wan > lan * 5, "wan={wan:?} lan={lan:?}");
    }

    #[test]
    fn fifo_between_a_pair_for_equal_sizes() {
        let net = fast_net();
        let _a = net.register(NodeId(0));
        let b = net.register(NodeId(1));
        for i in 0..32u32 {
            net.send(NodeId(0), NodeId(1), Payload::new("seq", 8, i))
                .unwrap();
        }
        let mut got = Vec::new();
        for _ in 0..32 {
            let env = b.recv_timeout(Duration::from_secs(2)).unwrap();
            got.push(*env.payload.downcast::<u32>().unwrap());
        }
        assert_eq!(got, (0..32).collect::<Vec<_>>());
    }
}

#[cfg(test)]
mod shared_segment_tests {
    use super::*;
    use crate::{LinkClass, TimeScale};
    use std::time::Duration;

    fn shared_net() -> Network {
        let mut topo = Topology::new();
        topo.set_default_class(LinkClass::Lan10);
        Network::with_config(
            SimClock::new(TimeScale::new(1e-3)),
            topo,
            NetworkConfig {
                shared_segments: vec![LinkClass::Lan10],
                ..NetworkConfig::default()
            },
        )
    }

    #[test]
    fn shared_segment_serializes_across_pairs() {
        // Two big transfers on DIFFERENT pairs of a shared 10 Mbit segment
        // must take about twice as long as one (they cannot overlap).
        let net = shared_net();
        let _a = net.register(NodeId(0));
        let _c = net.register(NodeId(2));
        let b = net.register(NodeId(1));
        let d = net.register(NodeId(3));
        let t0 = std::time::Instant::now();
        // ~1 virtual s each on Lan10 (0.9 MB/s).
        net.send(NodeId(0), NodeId(1), Payload::new("x", 900_000, 1u8))
            .unwrap();
        net.send(NodeId(2), NodeId(3), Payload::new("y", 900_000, 2u8))
            .unwrap();
        b.recv_timeout(Duration::from_secs(10)).unwrap();
        d.recv_timeout(Duration::from_secs(10)).unwrap();
        let both = t0.elapsed();
        // Two serialized 1-virtual-s transfers at 1e-3 ⇒ ≥ ~2 ms real.
        assert!(
            both >= Duration::from_micros(1900),
            "shared segment did not serialize: {both:?}"
        );
    }

    #[test]
    fn switched_segment_overlaps_across_pairs() {
        // Same experiment without the shared flag: the transfers overlap
        // and complete in about one transmission time.
        let mut topo = Topology::new();
        topo.set_default_class(LinkClass::Lan10);
        let net = Network::new(SimClock::new(TimeScale::new(1e-3)), topo);
        let _a = net.register(NodeId(0));
        let _c = net.register(NodeId(2));
        let b = net.register(NodeId(1));
        let d = net.register(NodeId(3));
        // Min-of-3: scheduler noise on a loaded host only inflates timings.
        let both = (0..3)
            .map(|_| {
                let t0 = std::time::Instant::now();
                net.send(NodeId(0), NodeId(1), Payload::new("x", 900_000, 1u8))
                    .unwrap();
                net.send(NodeId(2), NodeId(3), Payload::new("y", 900_000, 2u8))
                    .unwrap();
                b.recv_timeout(Duration::from_secs(10)).unwrap();
                d.recv_timeout(Duration::from_secs(10)).unwrap();
                t0.elapsed()
            })
            .min()
            .unwrap();
        assert!(
            both < Duration::from_micros(1800),
            "switched pairs should overlap: {both:?}"
        );
    }

    #[test]
    fn fast_segment_unaffected_by_slow_shared_one() {
        let mut topo = Topology::new();
        topo.set_default_class(LinkClass::Lan10);
        topo.set_node_class(NodeId(4), LinkClass::Lan100);
        topo.set_node_class(NodeId(5), LinkClass::Lan100);
        let net = Network::with_config(
            SimClock::new(TimeScale::new(1e-3)),
            topo,
            NetworkConfig {
                shared_segments: vec![LinkClass::Lan10],
                ..NetworkConfig::default()
            },
        );
        let _a = net.register(NodeId(0));
        let b = net.register(NodeId(1));
        let _e = net.register(NodeId(4));
        let f = net.register(NodeId(5));
        // Saturate the shared slow segment...
        net.send(NodeId(0), NodeId(1), Payload::new("slow", 2_000_000, 1u8))
            .unwrap();
        // ...while a fast-segment message goes through immediately.
        let t0 = std::time::Instant::now();
        net.send(NodeId(4), NodeId(5), Payload::new("fast", 1000, 2u8))
            .unwrap();
        f.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(t0.elapsed() < Duration::from_millis(2));
        b.recv_timeout(Duration::from_secs(10)).unwrap();
    }
}
