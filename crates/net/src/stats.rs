//! Traffic accounting.

use crate::NodeId;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

#[derive(Debug, Default)]
struct EndpointCounters {
    sent_msgs: AtomicU64,
    sent_bytes: AtomicU64,
    delivered_msgs: AtomicU64,
    delivered_bytes: AtomicU64,
    dropped_msgs: AtomicU64,
    dropped_bytes: AtomicU64,
    rejected_msgs: AtomicU64,
    rejected_bytes: AtomicU64,
}

/// Live traffic counters, shared between the network and its users.
///
/// These back the paper's network-related system parameters (packets/bytes in
/// and out) and the EXPERIMENTS.md overhead numbers. Besides the global
/// totals, traffic is attributed per endpoint: sends and rejections to the
/// source, deliveries to the destination, and drops to *both* endpoints (a
/// dropped message is traffic the source paid for and the destination never
/// saw — either side's operator needs to see it).
#[derive(Debug, Default)]
pub struct NetStats {
    msgs_sent: AtomicU64,
    bytes_sent: AtomicU64,
    msgs_delivered: AtomicU64,
    msgs_dropped: AtomicU64,
    msgs_rejected: AtomicU64,
    per_endpoint: RwLock<HashMap<NodeId, EndpointCounters>>,
}

impl NetStats {
    fn with_endpoint(&self, node: NodeId, f: impl Fn(&EndpointCounters)) {
        if let Some(c) = self.per_endpoint.read().get(&node) {
            f(c);
            return;
        }
        let mut map = self.per_endpoint.write();
        f(map.entry(node).or_default());
    }

    /// Records a message accepted for delivery.
    pub fn record_send(&self, src: NodeId, bytes: usize) {
        self.msgs_sent.fetch_add(1, Ordering::Relaxed);
        self.bytes_sent.fetch_add(bytes as u64, Ordering::Relaxed);
        self.with_endpoint(src, |c| {
            c.sent_msgs.fetch_add(1, Ordering::Relaxed);
            c.sent_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
        });
    }

    /// Records a successful delivery to an endpoint.
    pub fn record_delivery(&self, dst: NodeId, bytes: usize) {
        self.msgs_delivered.fetch_add(1, Ordering::Relaxed);
        self.with_endpoint(dst, |c| {
            c.delivered_msgs.fetch_add(1, Ordering::Relaxed);
            c.delivered_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
        });
    }

    /// Reverses one [`record_delivery`](Self::record_delivery): the delivery
    /// was counted optimistically (before the cross-thread hand-off, so a
    /// woken receiver never observes stats lagging its own message) and the
    /// hand-off then failed.
    pub fn uncount_delivery(&self, dst: NodeId, bytes: usize) {
        self.msgs_delivered.fetch_sub(1, Ordering::Relaxed);
        self.with_endpoint(dst, |c| {
            c.delivered_msgs.fetch_sub(1, Ordering::Relaxed);
            c.delivered_bytes.fetch_sub(bytes as u64, Ordering::Relaxed);
        });
    }

    /// Records a message dropped in flight (dead node, partition, closed
    /// endpoint). Attributed to both endpoints.
    pub fn record_drop(&self, src: NodeId, dst: NodeId, bytes: usize) {
        self.msgs_dropped.fetch_add(1, Ordering::Relaxed);
        for node in [src, dst] {
            self.with_endpoint(node, |c| {
                c.dropped_msgs.fetch_add(1, Ordering::Relaxed);
                c.dropped_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
            });
            if src == dst {
                break;
            }
        }
    }

    /// Records a send refused up front (dead source/destination, partition,
    /// unknown destination). Attributed to the source.
    pub fn record_rejection(&self, src: NodeId, bytes: usize) {
        self.msgs_rejected.fetch_add(1, Ordering::Relaxed);
        self.with_endpoint(src, |c| {
            c.rejected_msgs.fetch_add(1, Ordering::Relaxed);
            c.rejected_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
        });
    }

    /// A consistent-enough snapshot of the global counters.
    pub fn snapshot(&self) -> NetStatsSnapshot {
        NetStatsSnapshot {
            msgs_sent: self.msgs_sent.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            msgs_delivered: self.msgs_delivered.load(Ordering::Relaxed),
            msgs_dropped: self.msgs_dropped.load(Ordering::Relaxed),
            msgs_rejected: self.msgs_rejected.load(Ordering::Relaxed),
        }
    }

    /// Per-endpoint traffic snapshots, sorted by node id.
    pub fn per_endpoint(&self) -> Vec<EndpointStatsSnapshot> {
        let map = self.per_endpoint.read();
        let mut out: Vec<EndpointStatsSnapshot> = map
            .iter()
            .map(|(&node, c)| EndpointStatsSnapshot {
                node,
                sent_msgs: c.sent_msgs.load(Ordering::Relaxed),
                sent_bytes: c.sent_bytes.load(Ordering::Relaxed),
                delivered_msgs: c.delivered_msgs.load(Ordering::Relaxed),
                delivered_bytes: c.delivered_bytes.load(Ordering::Relaxed),
                dropped_msgs: c.dropped_msgs.load(Ordering::Relaxed),
                dropped_bytes: c.dropped_bytes.load(Ordering::Relaxed),
                rejected_msgs: c.rejected_msgs.load(Ordering::Relaxed),
                rejected_bytes: c.rejected_bytes.load(Ordering::Relaxed),
            })
            .collect();
        out.sort_by_key(|e| e.node);
        out
    }
}

/// Point-in-time copy of the network counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetStatsSnapshot {
    /// Messages accepted by [`crate::Network::send`].
    pub msgs_sent: u64,
    /// Total declared wire bytes of accepted messages.
    pub bytes_sent: u64,
    /// Messages actually handed to a receiving endpoint.
    pub msgs_delivered: u64,
    /// Messages dropped in flight or at delivery.
    pub msgs_dropped: u64,
    /// Sends refused up front (dead node, partition, unknown destination).
    pub msgs_rejected: u64,
}

impl NetStatsSnapshot {
    /// Messages still queued (sent but neither delivered nor dropped).
    pub fn in_flight(&self) -> u64 {
        self.msgs_sent
            .saturating_sub(self.msgs_delivered + self.msgs_dropped)
    }
}

/// Point-in-time traffic totals for one endpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EndpointStatsSnapshot {
    /// The endpoint's node id.
    pub node: NodeId,
    /// Messages this node sent (accepted by the network).
    pub sent_msgs: u64,
    /// Wire bytes this node sent.
    pub sent_bytes: u64,
    /// Messages delivered to this node.
    pub delivered_msgs: u64,
    /// Wire bytes delivered to this node.
    pub delivered_bytes: u64,
    /// In-flight drops involving this node (as source or destination).
    pub dropped_msgs: u64,
    /// Wire bytes of those drops.
    pub dropped_bytes: u64,
    /// Sends by this node refused up front.
    pub rejected_msgs: u64,
    /// Wire bytes of those refused sends.
    pub rejected_bytes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = NetStats::default();
        s.record_send(NodeId(0), 100);
        s.record_send(NodeId(0), 50);
        s.record_delivery(NodeId(1), 100);
        s.record_drop(NodeId(0), NodeId(1), 50);
        let snap = s.snapshot();
        assert_eq!(snap.msgs_sent, 2);
        assert_eq!(snap.bytes_sent, 150);
        assert_eq!(snap.msgs_delivered, 1);
        assert_eq!(snap.msgs_dropped, 1);
        assert_eq!(snap.in_flight(), 0);
    }

    #[test]
    fn in_flight_counts_pending() {
        let s = NetStats::default();
        s.record_send(NodeId(0), 1);
        s.record_send(NodeId(0), 1);
        s.record_send(NodeId(0), 1);
        s.record_delivery(NodeId(1), 1);
        assert_eq!(s.snapshot().in_flight(), 2);
    }

    #[test]
    fn in_flight_saturates_rather_than_underflowing() {
        let snap = NetStatsSnapshot {
            msgs_sent: 1,
            bytes_sent: 0,
            msgs_delivered: 2,
            msgs_dropped: 0,
            msgs_rejected: 0,
        };
        assert_eq!(snap.in_flight(), 0);
    }

    #[test]
    fn endpoints_attribute_sends_deliveries_and_drops() {
        let s = NetStats::default();
        s.record_send(NodeId(0), 100);
        s.record_delivery(NodeId(1), 100);
        s.record_send(NodeId(0), 40);
        s.record_drop(NodeId(0), NodeId(1), 40);
        s.record_rejection(NodeId(2), 8);
        let eps = s.per_endpoint();
        assert_eq!(eps.len(), 3);
        let n0 = eps[0];
        assert_eq!(n0.node, NodeId(0));
        assert_eq!((n0.sent_msgs, n0.sent_bytes), (2, 140));
        assert_eq!((n0.dropped_msgs, n0.dropped_bytes), (1, 40));
        assert_eq!(n0.delivered_msgs, 0);
        let n1 = eps[1];
        assert_eq!((n1.delivered_msgs, n1.delivered_bytes), (1, 100));
        assert_eq!((n1.dropped_msgs, n1.dropped_bytes), (1, 40));
        let n2 = eps[2];
        assert_eq!((n2.rejected_msgs, n2.rejected_bytes), (1, 8));
        assert_eq!(n2.sent_msgs, 0);
    }

    #[test]
    fn self_drop_is_counted_once_per_endpoint() {
        let s = NetStats::default();
        s.record_drop(NodeId(3), NodeId(3), 10);
        let eps = s.per_endpoint();
        assert_eq!(eps.len(), 1);
        assert_eq!(eps[0].dropped_msgs, 1);
        assert_eq!(s.snapshot().msgs_dropped, 1);
    }
}
