//! Traffic accounting.

use std::sync::atomic::{AtomicU64, Ordering};

/// Live traffic counters, shared between the network and its users.
///
/// These back the paper's network-related system parameters (packets/bytes in
/// and out) and the EXPERIMENTS.md overhead numbers.
#[derive(Debug, Default)]
pub struct NetStats {
    msgs_sent: AtomicU64,
    bytes_sent: AtomicU64,
    msgs_delivered: AtomicU64,
    msgs_dropped: AtomicU64,
}

impl NetStats {
    /// Records a message accepted for delivery.
    pub fn record_send(&self, bytes: usize) {
        self.msgs_sent.fetch_add(1, Ordering::Relaxed);
        self.bytes_sent.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Records a successful delivery to an endpoint.
    pub fn record_delivery(&self) {
        self.msgs_delivered.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a message dropped (dead node, partition, closed endpoint).
    pub fn record_drop(&self) {
        self.msgs_dropped.fetch_add(1, Ordering::Relaxed);
    }

    /// A consistent-enough snapshot of the counters.
    pub fn snapshot(&self) -> NetStatsSnapshot {
        NetStatsSnapshot {
            msgs_sent: self.msgs_sent.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            msgs_delivered: self.msgs_delivered.load(Ordering::Relaxed),
            msgs_dropped: self.msgs_dropped.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of the network counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetStatsSnapshot {
    /// Messages accepted by [`crate::Network::send`].
    pub msgs_sent: u64,
    /// Total declared wire bytes of accepted messages.
    pub bytes_sent: u64,
    /// Messages actually handed to a receiving endpoint.
    pub msgs_delivered: u64,
    /// Messages dropped in flight or at delivery.
    pub msgs_dropped: u64,
}

impl NetStatsSnapshot {
    /// Messages still queued (sent but neither delivered nor dropped).
    pub fn in_flight(&self) -> u64 {
        self.msgs_sent
            .saturating_sub(self.msgs_delivered + self.msgs_dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = NetStats::default();
        s.record_send(100);
        s.record_send(50);
        s.record_delivery();
        s.record_drop();
        let snap = s.snapshot();
        assert_eq!(snap.msgs_sent, 2);
        assert_eq!(snap.bytes_sent, 150);
        assert_eq!(snap.msgs_delivered, 1);
        assert_eq!(snap.msgs_dropped, 1);
        assert_eq!(snap.in_flight(), 0);
    }

    #[test]
    fn in_flight_counts_pending() {
        let s = NetStats::default();
        s.record_send(1);
        s.record_send(1);
        s.record_send(1);
        s.record_delivery();
        assert_eq!(s.snapshot().in_flight(), 2);
    }

    #[test]
    fn in_flight_saturates_rather_than_underflowing() {
        let snap = NetStatsSnapshot {
            msgs_sent: 1,
            bytes_sent: 0,
            msgs_delivered: 2,
            msgs_dropped: 0,
        };
        assert_eq!(snap.in_flight(), 0);
    }
}
