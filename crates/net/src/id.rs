//! Node identifiers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identity of a physical computing node registered with the runtime.
///
/// In the paper every workstation runs one JVM hosting the node's network
/// agent and public object agent; the `NodeId` is the address of that JVM on
/// the (simulated) network.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Returns the raw index backing this id.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_index() {
        let n = NodeId(7);
        assert_eq!(n.to_string(), "n7");
        assert_eq!(format!("{n:?}"), "n7");
        assert_eq!(n.index(), 7);
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(NodeId(1) < NodeId(2));
        assert_eq!(NodeId::from(3), NodeId(3));
    }
}
