//! # jsym-net — simulated network substrate for the jsymphony runtime
//!
//! JavaSymphony (CLUSTER 2000) runs on a heterogeneous workstation cluster in
//! which the Sun Ultra machines are connected by 100 Mbit/s Ethernet and the
//! older SPARCstations by 10 Mbit/s Ethernet. This crate reproduces that
//! communication substrate in-process:
//!
//! * every runtime node registers an **endpoint** (a crossbeam channel) with a
//!   [`Network`];
//! * a message send pays **latency + size / bandwidth** for the link between
//!   the two nodes, derived from each node's [`LinkClass`];
//! * virtual time is mapped onto real time by a [`SimClock`] so that a full
//!   cluster experiment runs in milliseconds while preserving the relative
//!   cost structure;
//! * node kills and network partitions can be injected for the fault-tolerance
//!   experiments.
//!
//! The payloads carried by the network are opaque to this crate: senders
//! declare the number of *wire bytes* a message would occupy (computed
//! analytically by the caller), which feeds the delay model without paying for
//! actual serialization on every hop.

#![warn(missing_docs)]

mod affinity;
mod clock;
mod id;
mod link;
mod message;
mod network;
mod queue;
mod shard;
mod stats;

pub use affinity::{AffinityHot, AffinityTracker, AffinityTrackerStats};
pub use clock::{sleep_until, SimClock, TimeScale, VirtDur, VirtTime};
pub use id::NodeId;
pub use link::{LinkClass, Topology};
pub use message::{Batch, Envelope, Payload, BATCH_TAG};
pub use network::{BatchConfig, LocalHook, NetHotStats, Network, NetworkConfig, SendError};
pub use queue::SpawnAt;
pub use stats::{EndpointStatsSnapshot, NetStats, NetStatsSnapshot};
