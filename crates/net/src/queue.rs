//! Delayed delivery scheduler.
//!
//! A single background thread owns a priority queue of in-flight messages
//! keyed by their real-time delivery deadline (the virtual transfer delay
//! mapped through the [`crate::SimClock`]). When a deadline passes, the
//! message is handed to the delivery callback installed by the network.

use crate::Envelope;
use parking_lot::{Condvar, Mutex};
use std::cmp::Ordering as CmpOrdering;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Delivery callback: gets the ready message.
pub(crate) type DeliverFn = Box<dyn Fn(Envelope) + Send + Sync>;

struct Scheduled {
    due: Instant,
    /// Tie-breaker preserving send order for equal deadlines.
    seq: u64,
    env: Envelope,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        // BinaryHeap is a max-heap; invert so the earliest deadline wins.
        other
            .due
            .cmp(&self.due)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

#[derive(Default)]
struct QueueState {
    heap: BinaryHeap<Scheduled>,
    next_seq: u64,
    shutdown: bool,
}

struct QueueInner {
    state: Mutex<QueueState>,
    cond: Condvar,
}

/// Handle to the delivery thread. Dropping it stops the thread; pending
/// messages are discarded (matching a network that disappears).
pub(crate) struct DelayQueue {
    inner: Arc<QueueInner>,
    handle: Option<JoinHandle<()>>,
}

impl DelayQueue {
    pub(crate) fn start(deliver: DeliverFn) -> Self {
        let inner = Arc::new(QueueInner {
            state: Mutex::new(QueueState::default()),
            cond: Condvar::new(),
        });
        let thread_inner = Arc::clone(&inner);
        let handle = std::thread::Builder::new()
            .name("jsym-net-delivery".into())
            .spawn(move || Self::run(thread_inner, deliver))
            .expect("spawn delivery thread");
        DelayQueue {
            inner,
            handle: Some(handle),
        }
    }

    /// Schedules `env` for delivery at real time `due`.
    pub(crate) fn push(&self, due: Instant, env: Envelope) {
        let mut state = self.inner.state.lock();
        if state.shutdown {
            return;
        }
        let seq = state.next_seq;
        state.next_seq += 1;
        state.heap.push(Scheduled { due, seq, env });
        self.inner.cond.notify_one();
    }

    fn run(inner: Arc<QueueInner>, deliver: DeliverFn) {
        // OS condvar timeouts overshoot by 50-100 µs, which at aggressive
        // time scales dwarfs the modeled link latencies. For deadlines in
        // the near future we therefore release the lock and spin-sleep to
        // the deadline instead (`sleep_until`); a message pushed meanwhile
        // is at most one spin window late, which is below the condvar's own
        // error. On single-core hosts the spin window is zero and this
        // degrades to plain timed waits (see `clock::spin_window`).
        let spin_horizon: Duration = crate::clock::spin_window() + Duration::from_micros(100);
        loop {
            let ready = {
                let mut state = inner.state.lock();
                loop {
                    if state.shutdown {
                        return;
                    }
                    let now = Instant::now();
                    match state.heap.peek() {
                        Some(s) if s.due <= now => break state.heap.pop().expect("peeked"),
                        Some(s) => {
                            let due = s.due;
                            if due - now <= spin_horizon {
                                drop(state);
                                crate::clock::sleep_until(due);
                                state = inner.state.lock();
                            } else {
                                inner.cond.wait_until(&mut state, due - spin_horizon);
                            }
                        }
                        None => {
                            inner.cond.wait(&mut state);
                        }
                    }
                }
            };
            deliver(ready.env);
        }
    }

    pub(crate) fn shutdown(&mut self) {
        {
            let mut state = self.inner.state.lock();
            state.shutdown = true;
            state.heap.clear();
        }
        self.inner.cond.notify_all();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for DelayQueue {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NodeId, Payload};
    use parking_lot::Mutex as PlMutex;
    use std::time::Duration;

    fn env(marker: u32) -> Envelope {
        Envelope {
            src: NodeId(0),
            dst: NodeId(1),
            sent_at: 0.0,
            payload: Payload::new("t", 0, marker),
        }
    }

    #[test]
    fn delivers_in_deadline_order() {
        let got: Arc<PlMutex<Vec<u32>>> = Arc::new(PlMutex::new(Vec::new()));
        let sink = Arc::clone(&got);
        let q = DelayQueue::start(Box::new(move |e| {
            sink.lock().push(*e.payload.downcast::<u32>().unwrap());
        }));
        let now = Instant::now();
        q.push(now + Duration::from_millis(30), env(3));
        q.push(now + Duration::from_millis(10), env(1));
        q.push(now + Duration::from_millis(20), env(2));
        std::thread::sleep(Duration::from_millis(120));
        assert_eq!(*got.lock(), vec![1, 2, 3]);
    }

    #[test]
    fn equal_deadlines_preserve_send_order() {
        let got: Arc<PlMutex<Vec<u32>>> = Arc::new(PlMutex::new(Vec::new()));
        let sink = Arc::clone(&got);
        let q = DelayQueue::start(Box::new(move |e| {
            sink.lock().push(*e.payload.downcast::<u32>().unwrap());
        }));
        let due = Instant::now() + Duration::from_millis(15);
        for i in 0..8 {
            q.push(due, env(i));
        }
        std::thread::sleep(Duration::from_millis(100));
        assert_eq!(*got.lock(), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn shutdown_discards_pending() {
        let got: Arc<PlMutex<Vec<u32>>> = Arc::new(PlMutex::new(Vec::new()));
        let sink = Arc::clone(&got);
        let mut q = DelayQueue::start(Box::new(move |e| {
            sink.lock().push(*e.payload.downcast::<u32>().unwrap());
        }));
        q.push(Instant::now() + Duration::from_secs(60), env(9));
        q.shutdown();
        assert!(got.lock().is_empty());
    }

    #[test]
    fn push_after_shutdown_is_ignored() {
        let mut q = DelayQueue::start(Box::new(|_| {}));
        q.shutdown();
        q.push(Instant::now(), env(1)); // must not panic or hang
    }

    #[test]
    fn immediate_deadline_delivers_quickly() {
        let (tx, rx) = crossbeam::channel::bounded(1);
        let q = DelayQueue::start(Box::new(move |e| {
            let _ = tx.send(*e.payload.downcast::<u32>().unwrap());
        }));
        q.push(Instant::now(), env(5));
        let v = rx.recv_timeout(Duration::from_secs(2)).expect("delivered");
        assert_eq!(v, 5);
    }
}
