//! Delayed delivery scheduler.
//!
//! A small pool of background threads (the *delivery plane*) owns N
//! priority queues of in-flight messages keyed by their real-time delivery
//! deadline (the virtual transfer delay mapped through the
//! [`crate::SimClock`]). Messages are sharded by **destination node**, so
//! concurrent senders on unrelated links never contend on a shared heap
//! lock, while everything bound for one node — in particular every
//! (src, dst) pair — still funnels through a single shard and keeps its
//! deterministic (due, seq) order.
//!
//! The plane has two implementations behind one handle:
//!
//! * **Threaded** ([`DelayQueue::start`]): one OS thread per shard, parked
//!   on a condvar until the next deadline. The legacy default.
//! * **Tasked** ([`DelayQueue::start_tasked`]): no threads of its own.
//!   Each shard keeps the same `(due, seq)` heap, but wake-ups are armed on
//!   an external scheduler via a [`SpawnAt`] closure (in practice the
//!   `jsym-exec` work-stealing executor) and the heap is drained by
//!   cooperatively-yielding tasks. At most one drain task runs per shard at
//!   a time (a `draining` flag claimed under the shard lock), so per-shard
//!   delivery order is identical to the threaded plane.

use crate::{Envelope, NodeId};
use parking_lot::{Condvar, Mutex};
use std::cmp::Ordering as CmpOrdering;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Delivery callback: gets the ready message. Shared across shard threads.
pub(crate) type DeliverFn = Arc<dyn Fn(Envelope) + Send + Sync>;

/// External deadline scheduler: `spawner(at, job)` must run `job` once, at
/// (not before) real-time `at`, off the caller's thread. Jobs armed for
/// equal instants must run in arming order. Provided by the embedding
/// runtime so `jsym-net` needs no dependency on the executor crate.
pub type SpawnAt = Arc<dyn Fn(Instant, Box<dyn FnOnce() + Send + 'static>) + Send + Sync>;

struct Scheduled {
    due: Instant,
    /// Tie-breaker preserving send order for equal deadlines. Per-shard:
    /// a (src, dst) pair always maps to one shard, so pair order is total.
    seq: u64,
    env: Envelope,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        // BinaryHeap is a max-heap; invert so the earliest deadline wins.
        other
            .due
            .cmp(&self.due)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

#[derive(Default)]
struct QueueState {
    heap: BinaryHeap<Scheduled>,
    next_seq: u64,
    shutdown: bool,
}

struct ShardInner {
    state: Mutex<QueueState>,
    cond: Condvar,
}

struct Shard {
    inner: Arc<ShardInner>,
    handle: Mutex<Option<JoinHandle<()>>>,
}

/// One tasked shard: the heap plus drain/arm bookkeeping.
#[derive(Default)]
struct TaskedState {
    heap: BinaryHeap<Scheduled>,
    next_seq: u64,
    /// A drain task currently owns this shard. While set, pushes never arm
    /// a wake-up: the drainer re-peeks under the lock before exiting and
    /// arms for whatever head it leaves behind.
    draining: bool,
    /// Earliest instant a wake-up is armed for, if any. Stale (later) armed
    /// tasks may exist; they find nothing due and are no-ops.
    armed: Option<Instant>,
}

struct TaskedInner {
    shards: Vec<Mutex<TaskedState>>,
    spawner: SpawnAt,
    deliver: DeliverFn,
    shutdown: AtomicBool,
}

/// Deliveries one drain task performs before re-scheduling itself, so a
/// shard under sustained load cannot monopolise an executor worker.
const DRAIN_BUDGET: usize = 256;

enum Plane {
    Threaded(Vec<Shard>),
    Tasked(Arc<TaskedInner>),
}

/// Handle to the delivery plane. Dropping it stops the threads; pending
/// messages are discarded (matching a network that disappears).
pub(crate) struct DelayQueue {
    plane: Plane,
}

/// Picks the shard for a destination. All traffic to one node — and hence
/// every (src, dst) pair — lands on exactly one shard.
fn shard_index(dst: NodeId, shards: usize) -> usize {
    dst.0 as usize % shards
}

impl DelayQueue {
    /// Spawns `shards` delivery threads (clamped to at least one), all
    /// feeding the same delivery callback.
    pub(crate) fn start(shards: usize, deliver: DeliverFn) -> Self {
        let shards = shards.max(1);
        let shards = (0..shards)
            .map(|i| {
                let inner = Arc::new(ShardInner {
                    state: Mutex::new(QueueState::default()),
                    cond: Condvar::new(),
                });
                let thread_inner = Arc::clone(&inner);
                let thread_deliver = Arc::clone(&deliver);
                let handle = std::thread::Builder::new()
                    .name(format!("jsym-net-delivery-{i}"))
                    .spawn(move || Self::run(thread_inner, thread_deliver))
                    .expect("spawn delivery thread");
                Shard {
                    inner,
                    handle: Mutex::new(Some(handle)),
                }
            })
            .collect();
        DelayQueue {
            plane: Plane::Threaded(shards),
        }
    }

    /// Builds a tasked plane: same shard count and ordering guarantees as
    /// [`DelayQueue::start`], but wake-ups run as `spawner` jobs instead of
    /// on dedicated threads.
    pub(crate) fn start_tasked(shards: usize, spawner: SpawnAt, deliver: DeliverFn) -> Self {
        let shards = shards.max(1);
        DelayQueue {
            plane: Plane::Tasked(Arc::new(TaskedInner {
                shards: (0..shards)
                    .map(|_| Mutex::new(TaskedState::default()))
                    .collect(),
                spawner,
                deliver,
                shutdown: AtomicBool::new(false),
            })),
        }
    }

    /// Schedules `env` for delivery at real time `due` on the shard owning
    /// its destination node.
    pub(crate) fn push(&self, due: Instant, env: Envelope) {
        match &self.plane {
            Plane::Threaded(shards) => {
                let shard = &shards[shard_index(env.dst, shards.len())];
                let mut state = shard.inner.state.lock();
                if state.shutdown {
                    return;
                }
                let seq = state.next_seq;
                state.next_seq += 1;
                state.heap.push(Scheduled { due, seq, env });
                shard.inner.cond.notify_one();
            }
            Plane::Tasked(inner) => {
                if inner.shutdown.load(Ordering::Acquire) {
                    return;
                }
                let idx = shard_index(env.dst, inner.shards.len());
                let wake = {
                    let mut st = inner.shards[idx].lock();
                    let seq = st.next_seq;
                    st.next_seq += 1;
                    st.heap.push(Scheduled { due, seq, env });
                    // Invariant: whenever `draining` is false and the heap is
                    // non-empty, a wake-up is armed at or before the head's
                    // deadline. A drainer owns the shard otherwise and arms
                    // on exit.
                    let wake = due.checked_sub(tasked_horizon()).unwrap_or(due);
                    if !st.draining && st.armed.is_none_or(|a| wake < a) {
                        st.armed = Some(wake);
                        Some(wake)
                    } else {
                        None
                    }
                };
                if let Some(at) = wake {
                    let task_inner = Arc::clone(inner);
                    (inner.spawner)(at, Box::new(move || drain_shard(&task_inner, idx)));
                }
            }
        }
    }

    fn run(inner: Arc<ShardInner>, deliver: DeliverFn) {
        // OS condvar timeouts overshoot by 50-100 µs, which at aggressive
        // time scales dwarfs the modeled link latencies. For deadlines in
        // the near future we therefore release the lock and spin-sleep to
        // the deadline instead (`sleep_until`); a message pushed meanwhile
        // is at most one spin window late, which is below the condvar's own
        // error. On single-core hosts the spin window is zero and this
        // degrades to plain timed waits (see `clock::spin_window`).
        let spin_horizon: Duration = crate::clock::spin_window() + Duration::from_micros(100);
        loop {
            let ready = {
                let mut state = inner.state.lock();
                loop {
                    if state.shutdown {
                        return;
                    }
                    let now = Instant::now();
                    match state.heap.peek() {
                        Some(s) if s.due <= now => break state.heap.pop().expect("peeked"),
                        Some(s) => {
                            let due = s.due;
                            if due - now <= spin_horizon {
                                drop(state);
                                crate::clock::sleep_until(due);
                                state = inner.state.lock();
                            } else {
                                inner.cond.wait_until(&mut state, due - spin_horizon);
                            }
                        }
                        None => {
                            inner.cond.wait(&mut state);
                        }
                    }
                }
            };
            deliver(ready.env);
        }
    }

    pub(crate) fn shutdown(&self) {
        match &self.plane {
            Plane::Threaded(shards) => {
                for shard in shards {
                    {
                        let mut state = shard.inner.state.lock();
                        state.shutdown = true;
                        state.heap.clear();
                    }
                    shard.inner.cond.notify_all();
                }
                // Join after flagging every shard so they wind down in parallel.
                for shard in shards {
                    if let Some(h) = shard.handle.lock().take() {
                        let _ = h.join();
                    }
                }
            }
            Plane::Tasked(inner) => {
                inner.shutdown.store(true, Ordering::Release);
                for shard in &inner.shards {
                    let mut st = shard.lock();
                    st.heap.clear();
                    st.armed = None;
                }
                // Armed wake-ups still held by the external scheduler fire
                // into `drain_shard`, see the shutdown flag, and no-op.
            }
        }
    }
}

/// Same near-future horizon as the threaded plane: wake-ups are armed this
/// much early and the drainer spin-sleeps the remainder, so tasked-mode
/// deadlines are honoured with the same precision.
fn tasked_horizon() -> Duration {
    crate::clock::spin_window() + Duration::from_micros(100)
}

/// Body of a tasked-shard wake-up: claim the shard, deliver everything due
/// (in `(due, seq)` order), then either re-arm for the next head or release.
/// Yields back to the scheduler after [`DRAIN_BUDGET`] deliveries.
fn drain_shard(inner: &Arc<TaskedInner>, idx: usize) {
    enum Step {
        Deliver(Envelope),
        Spin(Instant),
        Done,
    }
    {
        let mut st = inner.shards[idx].lock();
        if st.draining {
            return; // an active drainer will see whatever we were armed for
        }
        st.draining = true;
        st.armed = None;
    }
    let mut delivered = 0usize;
    loop {
        if inner.shutdown.load(Ordering::Acquire) {
            let mut st = inner.shards[idx].lock();
            st.heap.clear();
            st.draining = false;
            return;
        }
        let step = {
            let mut st = inner.shards[idx].lock();
            let now = Instant::now();
            match st.heap.peek() {
                None => {
                    st.draining = false;
                    Step::Done
                }
                Some(s) if s.due <= now => Step::Deliver(st.heap.pop().expect("peeked").env),
                Some(s) if s.due - now <= tasked_horizon() => Step::Spin(s.due),
                Some(s) => {
                    // Future head: hand the shard back and arm a fresh
                    // wake-up (the one that ran us was consumed above).
                    let wake = s.due.checked_sub(tasked_horizon()).unwrap_or(s.due);
                    st.draining = false;
                    st.armed = Some(wake);
                    drop(st);
                    let task_inner = Arc::clone(inner);
                    (inner.spawner)(wake, Box::new(move || drain_shard(&task_inner, idx)));
                    return;
                }
            }
        };
        match step {
            Step::Deliver(env) => {
                (inner.deliver)(env);
                delivered += 1;
                if delivered >= DRAIN_BUDGET {
                    // Cooperative yield: release the shard and reschedule
                    // immediately so other tasks get a worker.
                    let now = Instant::now();
                    {
                        let mut st = inner.shards[idx].lock();
                        st.draining = false;
                        st.armed = Some(now);
                    }
                    let task_inner = Arc::clone(inner);
                    (inner.spawner)(now, Box::new(move || drain_shard(&task_inner, idx)));
                    return;
                }
            }
            Step::Spin(due) => crate::clock::sleep_until(due),
            Step::Done => return,
        }
    }
}

impl Drop for DelayQueue {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NodeId, Payload};
    use parking_lot::Mutex as PlMutex;
    use std::time::Duration;

    fn env(marker: u32) -> Envelope {
        env_to(marker, 1)
    }

    fn env_to(marker: u32, dst: u32) -> Envelope {
        Envelope {
            src: NodeId(0),
            dst: NodeId(dst),
            sent_at: 0.0,
            payload: Payload::new("t", 0, marker),
        }
    }

    fn collecting(shards: usize) -> (DelayQueue, Arc<PlMutex<Vec<u32>>>) {
        let got: Arc<PlMutex<Vec<u32>>> = Arc::new(PlMutex::new(Vec::new()));
        let sink = Arc::clone(&got);
        let q = DelayQueue::start(
            shards,
            Arc::new(move |e: Envelope| {
                sink.lock().push(*e.payload.downcast::<u32>().unwrap());
            }),
        );
        (q, got)
    }

    #[test]
    fn delivers_in_deadline_order() {
        let (q, got) = collecting(1);
        let now = Instant::now();
        q.push(now + Duration::from_millis(30), env(3));
        q.push(now + Duration::from_millis(10), env(1));
        q.push(now + Duration::from_millis(20), env(2));
        std::thread::sleep(Duration::from_millis(120));
        assert_eq!(*got.lock(), vec![1, 2, 3]);
    }

    #[test]
    fn equal_deadlines_preserve_send_order() {
        let (q, got) = collecting(1);
        let due = Instant::now() + Duration::from_millis(15);
        for i in 0..8 {
            q.push(due, env(i));
        }
        std::thread::sleep(Duration::from_millis(100));
        assert_eq!(*got.lock(), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn same_destination_keeps_order_across_shards() {
        // With several shards, everything bound for one node still lands on
        // one heap: equal deadlines must come out in send order.
        let (q, got) = collecting(4);
        let due = Instant::now() + Duration::from_millis(15);
        for i in 0..8 {
            q.push(due, env_to(i, 6));
        }
        std::thread::sleep(Duration::from_millis(100));
        assert_eq!(*got.lock(), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn distinct_destinations_each_keep_deadline_order() {
        let (q, got) = collecting(4);
        let now = Instant::now();
        // Interleave pushes to four destinations with per-destination
        // deadlines in reverse push order.
        for dst in 0u32..4 {
            q.push(now + Duration::from_millis(40), env_to(100 + dst, dst));
        }
        for dst in 0u32..4 {
            q.push(now + Duration::from_millis(15), env_to(dst, dst));
        }
        std::thread::sleep(Duration::from_millis(150));
        let got = got.lock();
        for dst in 0u32..4 {
            let early = got.iter().position(|&v| v == dst).expect("early");
            let late = got.iter().position(|&v| v == 100 + dst).expect("late");
            assert!(early < late, "dst {dst}: {got:?}");
        }
    }

    #[test]
    fn shutdown_discards_pending() {
        let (q, got) = collecting(2);
        q.push(Instant::now() + Duration::from_secs(60), env(9));
        q.shutdown();
        assert!(got.lock().is_empty());
    }

    #[test]
    fn push_after_shutdown_is_ignored() {
        let q = DelayQueue::start(2, Arc::new(|_| {}));
        q.shutdown();
        q.push(Instant::now(), env(1)); // must not panic or hang
    }

    /// A toy [`SpawnAt`]: one thread per armed job, sleeping to the
    /// deadline. Good enough to exercise the tasked plane's protocol.
    fn thread_spawner() -> SpawnAt {
        Arc::new(|at: Instant, job: Box<dyn FnOnce() + Send + 'static>| {
            std::thread::spawn(move || {
                let now = Instant::now();
                if at > now {
                    std::thread::sleep(at - now);
                }
                job();
            });
        })
    }

    fn collecting_tasked(shards: usize) -> (DelayQueue, Arc<PlMutex<Vec<u32>>>) {
        let got: Arc<PlMutex<Vec<u32>>> = Arc::new(PlMutex::new(Vec::new()));
        let sink = Arc::clone(&got);
        let q = DelayQueue::start_tasked(
            shards,
            thread_spawner(),
            Arc::new(move |e: Envelope| {
                sink.lock().push(*e.payload.downcast::<u32>().unwrap());
            }),
        );
        (q, got)
    }

    #[test]
    fn tasked_delivers_in_deadline_order() {
        let (q, got) = collecting_tasked(1);
        let now = Instant::now();
        q.push(now + Duration::from_millis(30), env(3));
        q.push(now + Duration::from_millis(10), env(1));
        q.push(now + Duration::from_millis(20), env(2));
        std::thread::sleep(Duration::from_millis(150));
        assert_eq!(*got.lock(), vec![1, 2, 3]);
    }

    #[test]
    fn tasked_equal_deadlines_preserve_send_order() {
        let (q, got) = collecting_tasked(4);
        let due = Instant::now() + Duration::from_millis(15);
        for i in 0..8 {
            q.push(due, env_to(i, 6));
        }
        std::thread::sleep(Duration::from_millis(120));
        assert_eq!(*got.lock(), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn tasked_shutdown_discards_pending_and_ignores_push() {
        let (q, got) = collecting_tasked(2);
        q.push(Instant::now() + Duration::from_secs(60), env(9));
        q.shutdown();
        q.push(Instant::now(), env(1)); // must not panic or deliver
        std::thread::sleep(Duration::from_millis(50));
        assert!(got.lock().is_empty());
    }

    #[test]
    fn tasked_drain_budget_yields_and_resumes() {
        // More due-now messages than one drain budget: everything must still
        // arrive, in order, across the yield boundary.
        let (q, got) = collecting_tasked(1);
        let due = Instant::now();
        let n = (DRAIN_BUDGET * 2 + 10) as u32;
        for i in 0..n {
            q.push(due, env(i));
        }
        let deadline = Instant::now() + Duration::from_secs(10);
        while (got.lock().len() as u32) < n && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(*got.lock(), (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn immediate_deadline_delivers_quickly() {
        let (tx, rx) = crossbeam::channel::bounded(1);
        let q = DelayQueue::start(
            4,
            Arc::new(move |e: Envelope| {
                let _ = tx.send(*e.payload.downcast::<u32>().unwrap());
            }),
        );
        q.push(Instant::now(), env(5));
        let v = rx.recv_timeout(Duration::from_secs(2)).expect("delivered");
        assert_eq!(v, 5);
    }
}
