//! Virtual time.
//!
//! Experiments model the CLUSTER 2000 testbed, where a matrix multiplication
//! takes tens of seconds of wall time. To keep the whole evaluation
//! laptop-scale, the runtime operates on *virtual seconds* that a [`SimClock`]
//! maps onto real time with a configurable [`TimeScale`]. All simulated costs
//! (compute, network transfer, monitoring periods) are expressed in virtual
//! seconds and realized as scaled sleeps, so genuine thread-level parallelism
//! between simulated nodes is preserved.

use std::time::{Duration, Instant};

/// A point in virtual time, in seconds since the clock was created.
pub type VirtTime = f64;

/// A span of virtual time, in seconds.
pub type VirtDur = f64;

/// How many real seconds one virtual second takes.
///
/// `TimeScale::new(0.001)` runs the simulation at 1000x speed. The scale also
/// bounds how much real-scheduler noise leaks into virtual measurements: with
/// a scale of `s`, a real hiccup of `d` seconds inflates virtual time by
/// `d / s`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TimeScale {
    real_per_virt: f64,
}

impl TimeScale {
    /// Creates a scale of `real_per_virt` real seconds per virtual second.
    ///
    /// # Panics
    /// Panics if the factor is not finite and positive.
    pub fn new(real_per_virt: f64) -> Self {
        assert!(
            real_per_virt.is_finite() && real_per_virt > 0.0,
            "time scale must be finite and positive, got {real_per_virt}"
        );
        TimeScale { real_per_virt }
    }

    /// Real-time equivalent of a virtual duration.
    #[inline]
    pub fn to_real(self, virt: VirtDur) -> Duration {
        Duration::from_secs_f64((virt * self.real_per_virt).max(0.0))
    }

    /// Virtual-time equivalent of a real duration.
    #[inline]
    pub fn to_virt(self, real: Duration) -> VirtDur {
        real.as_secs_f64() / self.real_per_virt
    }

    /// The raw factor (real seconds per virtual second).
    #[inline]
    pub fn real_per_virt(self) -> f64 {
        self.real_per_virt
    }
}

impl Default for TimeScale {
    /// One virtual second = one millisecond of real time (1000x speed-up).
    fn default() -> Self {
        TimeScale::new(1e-3)
    }
}

/// Shared simulation clock.
///
/// Cloning is cheap; all clones observe the same epoch, so virtual timestamps
/// taken anywhere in a deployment are directly comparable.
#[derive(Clone, Debug)]
pub struct SimClock {
    start: Instant,
    scale: TimeScale,
}

impl SimClock {
    /// Creates a clock starting at virtual time zero.
    pub fn new(scale: TimeScale) -> Self {
        SimClock {
            start: Instant::now(),
            scale,
        }
    }

    /// Current virtual time in seconds since the clock epoch.
    #[inline]
    pub fn now(&self) -> VirtTime {
        self.scale.to_virt(self.start.elapsed())
    }

    /// Blocks the calling thread for `virt` virtual seconds.
    ///
    /// Uses a hybrid strategy: an OS sleep for the bulk of the wait, then a
    /// short spin to hit the deadline precisely. OS sleeps routinely overshoot
    /// by 50-100 µs, which would otherwise accumulate into a systematic bias
    /// across the thousands of modeled operations in one experiment.
    pub fn sleep(&self, virt: VirtDur) {
        if virt <= 0.0 {
            return;
        }
        let deadline = Instant::now() + self.scale.to_real(virt);
        sleep_until(deadline);
    }

    /// The scale this clock runs at.
    #[inline]
    pub fn scale(&self) -> TimeScale {
        self.scale
    }

    /// Converts a virtual timestamp into the real [`Instant`] at which it
    /// occurs (used by the delivery queue to schedule wake-ups).
    pub fn real_deadline(&self, at: VirtTime) -> Instant {
        self.start + self.scale.to_real(at)
    }
}

impl Default for SimClock {
    fn default() -> Self {
        SimClock::new(TimeScale::default())
    }
}

/// The spin window used to sharpen sleep deadlines.
///
/// On a multi-core host, spinning away the last ~200 µs of a wait absorbs
/// the OS sleep overshoot without hurting anyone. On a single-core host the
/// opposite holds: a spinner occupies the only CPU and *delays* the very
/// events it waits for, so spinning is disabled there.
pub(crate) fn spin_window() -> Duration {
    use std::sync::OnceLock;
    static WINDOW: OnceLock<Duration> = OnceLock::new();
    *WINDOW.get_or_init(|| {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        if cores >= 3 {
            Duration::from_micros(200)
        } else {
            Duration::ZERO
        }
    })
}

/// Sleeps until `deadline`: coarse OS sleeps, sharpened by a final spin on
/// hosts with enough cores to afford one (see `spin_window` above).
pub fn sleep_until(deadline: Instant) {
    let window = spin_window();
    loop {
        let now = Instant::now();
        if now >= deadline {
            return;
        }
        let remaining = deadline - now;
        if remaining > window {
            std::thread::sleep(remaining - window);
        } else if window.is_zero() {
            // Single-core: plain sleep all the way; overshoot is cheaper
            // than starving the other threads.
            std::thread::sleep(remaining);
        } else {
            std::hint::spin_loop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_round_trips() {
        let s = TimeScale::new(0.5);
        assert_eq!(s.to_real(2.0), Duration::from_secs(1));
        let v = s.to_virt(Duration::from_secs(1));
        assert!((v - 2.0).abs() < 1e-9);
    }

    #[test]
    fn default_scale_is_millisecond() {
        let s = TimeScale::default();
        assert_eq!(s.to_real(1.0), Duration::from_millis(1));
    }

    #[test]
    #[should_panic(expected = "time scale must be finite")]
    fn zero_scale_rejected() {
        TimeScale::new(0.0);
    }

    #[test]
    fn negative_sleep_is_noop() {
        let clock = SimClock::new(TimeScale::new(1.0));
        let t0 = Instant::now();
        clock.sleep(-5.0);
        assert!(t0.elapsed() < Duration::from_millis(50));
    }

    #[test]
    fn clock_advances_monotonically() {
        let clock = SimClock::new(TimeScale::new(1e-4));
        let a = clock.now();
        clock.sleep(1.0); // 0.1 ms real
        let b = clock.now();
        assert!(b > a, "expected {b} > {a}");
    }

    #[test]
    fn clones_share_the_epoch() {
        let clock = SimClock::default();
        let other = clock.clone();
        let a = clock.now();
        let b = other.now();
        assert!((b - a).abs() < 50.0, "clones diverged: {a} vs {b}");
    }

    #[test]
    fn sleep_is_precise_for_short_waits() {
        // 1 virtual s at 1e-3 scale = 1 ms real. Judge precision by the
        // *minimum* over several attempts: scheduler noise only ever
        // inflates a sleep, so the min isolates the mechanism itself.
        let clock = SimClock::new(TimeScale::new(1e-3));
        let best = (0..20)
            .map(|_| {
                let t0 = Instant::now();
                clock.sleep(1.0);
                t0.elapsed()
            })
            .min()
            .unwrap();
        assert!(best >= Duration::from_micros(950), "undersleep: {best:?}");
        assert!(best < Duration::from_micros(1800), "oversleep: {best:?}");
    }

    #[test]
    fn real_deadline_matches_scale() {
        let clock = SimClock::new(TimeScale::new(1e-3));
        let d = clock.real_deadline(2.0);
        let expected = clock.start + Duration::from_millis(2);
        assert_eq!(d, expected);
    }
}
