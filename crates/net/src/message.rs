//! Message envelopes carried by the simulated network.

use crate::{NodeId, VirtTime};
use std::any::Any;
use std::fmt;

/// An opaque payload plus the metadata the delay model needs.
///
/// The network charges for `wire_bytes` — the size the message *would* occupy
/// on the wire after Java-style serialization — while the in-process transfer
/// hands over the boxed value directly. Callers compute `wire_bytes`
/// analytically (see `jsym_core::value::Value::wire_size`).
pub struct Payload {
    data: Box<dyn Any + Send>,
    wire_bytes: usize,
    tag: &'static str,
}

impl Payload {
    /// Wraps `value`, declaring its serialized size and a debugging tag.
    pub fn new<T: Any + Send>(tag: &'static str, wire_bytes: usize, value: T) -> Self {
        Payload {
            data: Box::new(value),
            wire_bytes,
            tag,
        }
    }

    /// The declared wire size in bytes.
    #[inline]
    pub fn wire_bytes(&self) -> usize {
        self.wire_bytes
    }

    /// The debugging tag given at construction.
    #[inline]
    pub fn tag(&self) -> &'static str {
        self.tag
    }

    /// Recovers the payload value, or returns `self` unchanged if the type
    /// does not match.
    pub fn downcast<T: Any>(self) -> Result<Box<T>, Payload> {
        let Payload {
            data,
            wire_bytes,
            tag,
        } = self;
        data.downcast::<T>().map_err(|data| Payload {
            data,
            wire_bytes,
            tag,
        })
    }

    /// Borrow the payload value if it has type `T`.
    pub fn downcast_ref<T: Any>(&self) -> Option<&T> {
        self.data.downcast_ref::<T>()
    }
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Payload({}, {} B)", self.tag, self.wire_bytes)
    }
}

/// A message in flight (or delivered) on the simulated network.
#[derive(Debug)]
pub struct Envelope {
    /// Sending node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Virtual time at which the send was issued.
    pub sent_at: VirtTime,
    /// The payload.
    pub payload: Payload,
}

/// Payload tag marking a coalesced [`Batch`]; reserved for the batching
/// stage — delivery unpacks payloads with this tag back into their member
/// envelopes before they reach an endpoint.
pub const BATCH_TAG: &str = "net.batch";

/// Several same-`(src, dst)` envelopes coalesced by the batching stage into
/// one wire transfer (see `NetworkConfig::batching`).
///
/// The wrapper's declared wire size is the *sum* of the members' sizes and
/// pays the link latency once; delivery unpacks it and hands each member to
/// the endpoint individually, in send order, so receivers never observe the
/// wrapper.
pub struct Batch {
    /// The coalesced envelopes, in send order.
    pub envs: Vec<Envelope>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn downcast_right_type() {
        let p = Payload::new("test", 16, 42u64);
        assert_eq!(p.wire_bytes(), 16);
        assert_eq!(p.tag(), "test");
        let v = p.downcast::<u64>().expect("type matches");
        assert_eq!(*v, 42);
    }

    #[test]
    fn downcast_wrong_type_returns_payload() {
        let p = Payload::new("test", 8, 1.5f64);
        let p = p.downcast::<u32>().expect_err("wrong type");
        // The original payload survives intact.
        assert_eq!(p.wire_bytes(), 8);
        assert_eq!(*p.downcast::<f64>().unwrap(), 1.5);
    }

    #[test]
    fn downcast_ref_borrows() {
        let p = Payload::new("s", 4, String::from("hi"));
        assert_eq!(p.downcast_ref::<String>().map(|s| s.as_str()), Some("hi"));
        assert!(p.downcast_ref::<u8>().is_none());
    }

    #[test]
    fn debug_formats_tag_and_size() {
        let p = Payload::new("invoke", 128, ());
        assert_eq!(format!("{p:?}"), "Payload(invoke, 128 B)");
    }
}
