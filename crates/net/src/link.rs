//! Link classes and cluster topology.
//!
//! The CLUSTER 2000 testbed wires all Sun Ultra workstations with 100 Mbit/s
//! Ethernet while the older SPARCstations sit on a shared 10 Mbit/s segment.
//! We model each node as belonging to one [`LinkClass`]; the effective link
//! between two nodes is the *slower* of their classes (max latency, min
//! bandwidth), which matches how mixed-speed segments behaved through the
//! site's switch. Wide-area links between sites use the `Wan` class.

use crate::{NodeId, VirtDur};
use std::collections::HashMap;

/// Class of the network attachment of a node (or of a long-haul link).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LinkClass {
    /// Same-node communication: AppOA and PubOA on one machine interact by
    /// direct method invocation in the paper, so this is (nearly) free.
    Loopback,
    /// 100 Mbit/s switched Ethernet (the Sun Ultras).
    Lan100,
    /// 10 Mbit/s shared Ethernet (the older SPARCstations).
    Lan10,
    /// A wide-area link between geographically distributed clusters (sites).
    Wan,
}

impl LinkClass {
    /// One-way message latency in virtual seconds.
    ///
    /// Values reflect late-90s Java RMI round trips: a null RMI over fast
    /// Ethernet cost on the order of a millisecond, several milliseconds over
    /// the 10 Mbit segment, and tens of milliseconds over a WAN.
    pub fn latency(self) -> VirtDur {
        match self {
            LinkClass::Loopback => 20e-6,
            LinkClass::Lan100 => 0.9e-3,
            LinkClass::Lan10 => 2.5e-3,
            LinkClass::Wan => 35e-3,
        }
    }

    /// Usable bandwidth in bytes per virtual second.
    ///
    /// Ethernet of the era delivered roughly 70-80% of nominal bandwidth to
    /// applications once protocol and serialization overheads are counted.
    pub fn bandwidth(self) -> f64 {
        match self {
            LinkClass::Loopback => 400e6,
            LinkClass::Lan100 => 9.0e6,
            LinkClass::Lan10 => 0.9e6,
            LinkClass::Wan => 0.25e6,
        }
    }

    /// Time to move `bytes` over this link, excluding propagation latency.
    #[inline]
    pub fn transfer_time(self, bytes: usize) -> VirtDur {
        bytes as f64 / self.bandwidth()
    }

    /// Combines the attachment classes of two endpoints into the effective
    /// class of the path between them: the slower side dominates.
    pub fn combine(a: LinkClass, b: LinkClass) -> LinkClass {
        use LinkClass::*;
        // Severity order: Loopback < Lan100 < Lan10 < Wan.
        fn severity(c: LinkClass) -> u8 {
            match c {
                Loopback => 0,
                Lan100 => 1,
                Lan10 => 2,
                Wan => 3,
            }
        }
        if severity(a) >= severity(b) {
            a
        } else {
            b
        }
    }
}

/// Per-node link classes plus optional per-pair overrides.
#[derive(Clone, Debug, Default)]
pub struct Topology {
    node_class: HashMap<NodeId, LinkClass>,
    /// Pair overrides, stored with the smaller id first.
    pair_class: HashMap<(NodeId, NodeId), LinkClass>,
    default_class: Option<LinkClass>,
}

impl Topology {
    /// An empty topology where unknown nodes default to `Lan100`.
    pub fn new() -> Self {
        Topology::default()
    }

    /// Sets the fallback class for nodes that were never configured.
    pub fn set_default_class(&mut self, class: LinkClass) {
        self.default_class = Some(class);
    }

    /// Declares the attachment class of a node.
    pub fn set_node_class(&mut self, node: NodeId, class: LinkClass) {
        self.node_class.insert(node, class);
    }

    /// Forces the class of the path between two specific nodes (e.g. a WAN
    /// link between two site gateways), overriding attachment-based
    /// combination.
    pub fn set_pair_class(&mut self, a: NodeId, b: NodeId, class: LinkClass) {
        self.pair_class.insert(Self::key(a, b), class);
    }

    /// The attachment class of a node.
    pub fn node_class(&self, node: NodeId) -> LinkClass {
        self.node_class
            .get(&node)
            .copied()
            .or(self.default_class)
            .unwrap_or(LinkClass::Lan100)
    }

    /// Effective class of the path between two nodes.
    pub fn link_between(&self, a: NodeId, b: NodeId) -> LinkClass {
        if a == b {
            return LinkClass::Loopback;
        }
        if let Some(&c) = self.pair_class.get(&Self::key(a, b)) {
            return c;
        }
        LinkClass::combine(self.node_class(a), self.node_class(b))
    }

    /// End-to-end delay of a `bytes`-sized message from `a` to `b` in virtual
    /// seconds: propagation latency plus transmission time.
    pub fn transfer_delay(&self, a: NodeId, b: NodeId, bytes: usize) -> VirtDur {
        let link = self.link_between(a, b);
        link.latency() + link.transfer_time(bytes)
    }

    fn key(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combine_prefers_slower_side() {
        use LinkClass::*;
        assert_eq!(LinkClass::combine(Lan100, Lan10), Lan10);
        assert_eq!(LinkClass::combine(Lan10, Lan100), Lan10);
        assert_eq!(LinkClass::combine(Lan100, Lan100), Lan100);
        assert_eq!(LinkClass::combine(Wan, Loopback), Wan);
        assert_eq!(LinkClass::combine(Loopback, Loopback), Loopback);
    }

    #[test]
    fn same_node_is_loopback() {
        let topo = Topology::new();
        assert_eq!(topo.link_between(NodeId(3), NodeId(3)), LinkClass::Loopback);
    }

    #[test]
    fn link_is_symmetric() {
        let mut topo = Topology::new();
        topo.set_node_class(NodeId(0), LinkClass::Lan100);
        topo.set_node_class(NodeId(1), LinkClass::Lan10);
        assert_eq!(
            topo.link_between(NodeId(0), NodeId(1)),
            topo.link_between(NodeId(1), NodeId(0))
        );
        assert_eq!(topo.link_between(NodeId(0), NodeId(1)), LinkClass::Lan10);
    }

    #[test]
    fn pair_override_wins() {
        let mut topo = Topology::new();
        topo.set_node_class(NodeId(0), LinkClass::Lan100);
        topo.set_node_class(NodeId(1), LinkClass::Lan100);
        topo.set_pair_class(NodeId(1), NodeId(0), LinkClass::Wan);
        assert_eq!(topo.link_between(NodeId(0), NodeId(1)), LinkClass::Wan);
    }

    #[test]
    fn default_class_used_for_unknown_nodes() {
        let mut topo = Topology::new();
        assert_eq!(topo.node_class(NodeId(42)), LinkClass::Lan100);
        topo.set_default_class(LinkClass::Lan10);
        assert_eq!(topo.node_class(NodeId(42)), LinkClass::Lan10);
    }

    #[test]
    fn slow_link_is_slower_for_large_transfers() {
        let mut topo = Topology::new();
        topo.set_node_class(NodeId(0), LinkClass::Lan100);
        topo.set_node_class(NodeId(1), LinkClass::Lan100);
        topo.set_node_class(NodeId(2), LinkClass::Lan10);
        let one_mb = 1 << 20;
        let fast = topo.transfer_delay(NodeId(0), NodeId(1), one_mb);
        let slow = topo.transfer_delay(NodeId(0), NodeId(2), one_mb);
        assert!(
            slow > 5.0 * fast,
            "10Mbit should be much slower: {slow} vs {fast}"
        );
    }

    #[test]
    fn latency_ordering_matches_severity() {
        use LinkClass::*;
        assert!(Loopback.latency() < Lan100.latency());
        assert!(Lan100.latency() < Lan10.latency());
        assert!(Lan10.latency() < Wan.latency());
        assert!(Loopback.bandwidth() > Lan100.bandwidth());
        assert!(Lan100.bandwidth() > Lan10.bandwidth());
        assert!(Lan10.bandwidth() > Wan.bandwidth());
    }
}
