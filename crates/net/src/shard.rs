//! Lock-striped hot-path state for the delivery plane.
//!
//! Every modeled send touches per-pair connection state (`pair_last`), and —
//! with coalescing armed — per-pair batch and gap-EWMA state. Behind one
//! process-global mutex each, those maps serialize every sender in the
//! process at swarm scale. This module replaces them with N-way lock
//! striping over a packed `u64` pair key: the same pair always lands on the
//! same stripe (preserving the per-pair critical-section protocol exactly),
//! while unrelated pairs proceed in parallel. `shards == 1` degenerates to
//! the legacy single-lock layout and serves as the differential oracle.

use jsym_obs::Counter;
use parking_lot::{Mutex, MutexGuard};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::{LinkClass, NodeId};

/// Packs a directed `(src, dst)` node pair into one `u64` map key. Replaces
/// tuple-key hashing: one integer mix instead of SipHash over 8 bytes of
/// struct, and the key doubles as the stripe selector input.
#[inline]
pub(crate) fn pair_key(src: NodeId, dst: NodeId) -> u64 {
    ((src.0 as u64) << 32) | dst.0 as u64
}

/// Fibonacci multiplier (2^64 / φ); mixes the packed key's low and high
/// halves into well-distributed upper bits.
const MIX: u64 = 0x9E37_79B9_7F4A_7C15;

/// Trivial one-multiply hasher for the packed pair keys. The keys are
/// already unique integers; SipHash would burn most of a map lookup's cost
/// on DoS resistance the simulator does not need.
#[derive(Default)]
pub(crate) struct PairKeyHasher(u64);

impl Hasher for PairKeyHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Only u64 keys are ever hashed; anything else is a bug.
        debug_assert!(bytes.len() == 8, "PairKeyHasher is for u64 keys only");
        let mut k = [0u8; 8];
        k[..bytes.len().min(8)].copy_from_slice(&bytes[..bytes.len().min(8)]);
        self.write_u64(u64::from_le_bytes(k));
    }

    #[inline]
    fn write_u64(&mut self, k: u64) {
        self.0 = k.wrapping_mul(MIX);
    }
}

/// A pair-keyed map in this module: `HashMap` with the one-multiply hasher.
pub(crate) type PairMap<V> = HashMap<u64, V, BuildHasherDefault<PairKeyHasher>>;

/// N-way lock-striped `u64 → V` map. `N` is rounded up to a power of two so
/// stripe selection is a mask; every stripe's map is pre-sized so the hot
/// path never rehashes under a stripe lock.
pub(crate) struct Striped<V> {
    shards: Box<[Mutex<PairMap<V>>]>,
    mask: u64,
    /// Stripe-lock acquisitions that found the lock held (`try_lock` failed
    /// and we had to wait). The contention signal `ablate_contention` sweeps.
    contended: AtomicU64,
    /// Pre-resolved `net.shard.contended` handle (no-op when obs is off).
    obs_contended: Counter,
}

impl<V> Striped<V> {
    /// `shards` is clamped to at least 1 and rounded up to a power of two;
    /// each stripe's map is pre-sized to `capacity` entries.
    pub(crate) fn new(shards: usize, capacity: usize, obs_contended: Counter) -> Self {
        let n = shards.max(1).next_power_of_two();
        let shards = (0..n)
            .map(|_| {
                Mutex::new(PairMap::with_capacity_and_hasher(
                    capacity,
                    Default::default(),
                ))
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Striped {
            shards,
            mask: (n - 1) as u64,
            contended: AtomicU64::new(0),
            obs_contended,
        }
    }

    #[inline]
    fn shard(&self, key: u64) -> &Mutex<PairMap<V>> {
        // High bits of the mix are the well-distributed ones.
        &self.shards[(key.wrapping_mul(MIX) >> 32 & self.mask) as usize]
    }

    /// Locks the stripe owning `key`, counting contended acquisitions.
    pub(crate) fn lock(&self, key: u64) -> MutexGuard<'_, PairMap<V>> {
        let shard = self.shard(key);
        match shard.try_lock() {
            Some(g) => g,
            None => {
                self.contended.fetch_add(1, Ordering::Relaxed);
                self.obs_contended.inc();
                shard.lock()
            }
        }
    }

    /// Stripe count (after rounding).
    pub(crate) fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Contended stripe-lock acquisitions so far.
    pub(crate) fn contended(&self) -> u64 {
        self.contended.load(Ordering::Relaxed)
    }
}

/// Per-link-class "segment busy until" slots, replacing the
/// `Mutex<HashMap<LinkClass, f64>>` the shared-segment model kept: there are
/// only four link classes, so the map was pure overhead and a single global
/// lock. One word-sized mutex per class; `0.0` means "never used", which is
/// indistinguishable from an absent entry because virtual arrivals are
/// strictly positive.
pub(crate) struct SegmentSlots {
    slots: [Mutex<f64>; 4],
}

#[inline]
fn class_index(link: LinkClass) -> usize {
    match link {
        LinkClass::Loopback => 0,
        LinkClass::Lan100 => 1,
        LinkClass::Lan10 => 2,
        LinkClass::Wan => 3,
    }
}

impl SegmentSlots {
    pub(crate) fn new() -> Self {
        SegmentSlots {
            slots: [
                Mutex::new(0.0),
                Mutex::new(0.0),
                Mutex::new(0.0),
                Mutex::new(0.0),
            ],
        }
    }

    /// Locks the class's busy-until slot.
    pub(crate) fn lock(&self, link: LinkClass) -> MutexGuard<'_, f64> {
        self.slots[class_index(link)].lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsym_obs::ObsRegistry;

    fn counter() -> Counter {
        ObsRegistry::disabled().counter("net.shard.contended", None, "test")
    }

    #[test]
    fn pair_key_packs_src_high_dst_low() {
        assert_eq!(pair_key(NodeId(0), NodeId(0)), 0);
        assert_eq!(pair_key(NodeId(1), NodeId(2)), (1 << 32) | 2);
        assert_ne!(
            pair_key(NodeId(1), NodeId(2)),
            pair_key(NodeId(2), NodeId(1)),
            "directed pairs must stay distinct"
        );
    }

    #[test]
    fn same_key_always_lands_on_same_stripe() {
        let s: Striped<u32> = Striped::new(8, 4, counter());
        let key = pair_key(NodeId(7), NodeId(13));
        s.lock(key).insert(key, 42);
        // Any later lock of the same key must see the entry.
        assert_eq!(s.lock(key).get(&key), Some(&42));
    }

    #[test]
    fn shard_count_rounds_to_power_of_two_and_clamps() {
        assert_eq!(Striped::<u32>::new(0, 0, counter()).shard_count(), 1);
        assert_eq!(Striped::<u32>::new(1, 0, counter()).shard_count(), 1);
        assert_eq!(Striped::<u32>::new(5, 0, counter()).shard_count(), 8);
        assert_eq!(Striped::<u32>::new(64, 0, counter()).shard_count(), 64);
    }

    #[test]
    fn distinct_pairs_spread_over_stripes() {
        let s: Striped<u32> = Striped::new(64, 4, counter());
        let mut used = std::collections::HashSet::new();
        for src in 0..64u32 {
            for dst in 0..64u32 {
                let key = pair_key(NodeId(src), NodeId(dst));
                used.insert((key.wrapping_mul(MIX) >> 32 & s.mask) as usize);
            }
        }
        assert!(
            used.len() > 48,
            "4096 pairs should hit most of 64 stripes, hit {}",
            used.len()
        );
    }

    #[test]
    fn contended_counts_waited_acquisitions() {
        let s: std::sync::Arc<Striped<u32>> = std::sync::Arc::new(Striped::new(1, 4, counter()));
        let key = pair_key(NodeId(0), NodeId(1));
        let guard = s.lock(key);
        let s2 = std::sync::Arc::clone(&s);
        let t = std::thread::spawn(move || {
            let _g = s2.lock(key);
        });
        // Give the thread time to hit the held lock.
        std::thread::sleep(std::time::Duration::from_millis(50));
        drop(guard);
        t.join().unwrap();
        assert_eq!(s.contended(), 1);
    }

    #[test]
    fn segment_slots_start_idle() {
        let seg = SegmentSlots::new();
        assert_eq!(*seg.lock(LinkClass::Lan10), 0.0);
        *seg.lock(LinkClass::Lan10) = 4.5;
        assert_eq!(*seg.lock(LinkClass::Lan10), 4.5);
        assert_eq!(*seg.lock(LinkClass::Wan), 0.0);
    }
}
