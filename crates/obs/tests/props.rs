//! Property-based tests for the observability substrate.

use jsym_obs::{validate_spans, HistogramSnapshot, MetricsRegistry, Tracer};
use proptest::prelude::*;

/// A histogram snapshot over the shared bounds `[1, 10, 100]`, built by
/// observing arbitrary values through a real registry histogram.
fn arb_histo() -> impl Strategy<Value = HistogramSnapshot> {
    proptest::collection::vec(0.0f64..1000.0, 0..32).prop_map(|values| {
        let m = MetricsRegistry::new();
        let h = m.histogram("h", None, "", &[1.0, 10.0, 100.0]);
        for v in values {
            h.observe(v);
        }
        h.snapshot()
    })
}

/// Everything exact about a snapshot; `sum` is checked separately with a
/// tolerance because float addition is only approximately associative.
fn exact_parts(h: &HistogramSnapshot) -> (Vec<u64>, u64, u64, u64) {
    (h.buckets.clone(), h.count, h.min.to_bits(), h.max.to_bits())
}

proptest! {
    /// Merge is commutative: a+b == b+a (exactly, except float sum).
    #[test]
    fn merge_commutative(a in arb_histo(), b in arb_histo()) {
        let mut ab = a.clone();
        ab.merge(&b).unwrap();
        let mut ba = b.clone();
        ba.merge(&a).unwrap();
        prop_assert_eq!(exact_parts(&ab), exact_parts(&ba));
        prop_assert!((ab.sum - ba.sum).abs() <= 1e-6 * (1.0 + ab.sum.abs()));
    }

    /// Merge is associative: (a+b)+c == a+(b+c).
    #[test]
    fn merge_associative(a in arb_histo(), b in arb_histo(), c in arb_histo()) {
        let mut left = a.clone();
        left.merge(&b).unwrap();
        left.merge(&c).unwrap();
        let mut bc = b.clone();
        bc.merge(&c).unwrap();
        let mut right = a.clone();
        right.merge(&bc).unwrap();
        prop_assert_eq!(exact_parts(&left), exact_parts(&right));
        prop_assert!((left.sum - right.sum).abs() <= 1e-6 * (1.0 + left.sum.abs()));
    }

    /// The empty snapshot is a two-sided merge identity.
    #[test]
    fn merge_identity(a in arb_histo()) {
        let mut left = HistogramSnapshot::empty();
        left.merge(&a).unwrap();
        prop_assert_eq!(&left, &a);
        let mut right = a.clone();
        right.merge(&HistogramSnapshot::empty()).unwrap();
        prop_assert_eq!(&right, &a);
    }

    /// Merging preserves the bucket-count invariant: count equals the sum of
    /// all buckets, and the bucket vector keeps bounds.len()+1 entries.
    #[test]
    fn merge_preserves_invariants(a in arb_histo(), b in arb_histo()) {
        let mut m = a.clone();
        m.merge(&b).unwrap();
        prop_assert_eq!(m.buckets.len(), m.bounds.len() + 1);
        prop_assert_eq!(m.buckets.iter().sum::<u64>(), m.count);
        prop_assert_eq!(m.count, a.count + b.count);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Span trees recorded concurrently from many threads stay well-formed:
    /// no orphan parents, no duplicate ids, every child interval inside its
    /// parent's interval.
    #[test]
    fn concurrent_span_trees_are_well_formed(
        threads in 1usize..6,
        per_thread in 1usize..40,
    ) {
        let tracer = Tracer::new(threads * per_thread * 2 + 8);
        let root = tracer.span("root", 0.0).node(0);
        let rid = root.id();
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let tracer = tracer.clone();
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        let start = 1.0 + t as f64 + i as f64 * 1e-3;
                        let parent = tracer
                            .span("op", start)
                            .node(t as u32)
                            .parent(rid);
                        let pid = parent.id();
                        tracer
                            .span("op.step", start + 1e-4)
                            .node(t as u32)
                            .parent(pid)
                            .finish(start + 2e-4);
                        parent.finish(start + 5e-4);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        root.finish(1e9);
        let spans = tracer.snapshot();
        prop_assert_eq!(spans.len(), threads * per_thread * 2 + 1);
        prop_assert_eq!(tracer.dropped(), 0);
        if let Err(e) = validate_spans(&spans) {
            return Err(TestCaseError::fail(e));
        }
    }
}
