//! Hand-rolled JSON export and plain-text summary rendering.
//!
//! Serialization is written by hand (rather than via serde) to keep this
//! crate dependency-free; the output is plain JSON that `serde_json` in the
//! integration suite parses and validates.

use std::fmt::Write as _;

use crate::metrics::{HistogramSnapshot, MetricKey};
use crate::trace::SpanRecord;
use crate::ObsSnapshot;

/// Schema tag stamped into every export so downstream tooling can detect
/// format drift.
const SCHEMA: &str = "jsym-obs/v1";

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// JSON has no NaN/Infinity literals; map non-finite values to null.
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

fn key_fields(out: &mut String, key: &MetricKey) {
    let _ = write!(out, "\"name\": \"{}\", ", escape(&key.name));
    match key.node {
        Some(n) => {
            let _ = write!(out, "\"node\": {n}, ");
        }
        None => out.push_str("\"node\": null, "),
    }
    let _ = write!(out, "\"component\": \"{}\"", escape(&key.component));
}

fn histogram_json(out: &mut String, h: &HistogramSnapshot) {
    out.push_str("\"bounds\": [");
    for (i, b) in h.bounds.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&num(*b));
    }
    out.push_str("], \"buckets\": [");
    for (i, c) in h.buckets.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{c}");
    }
    let _ = write!(out, "], \"count\": {}, \"sum\": {}, ", h.count, num(h.sum));
    if h.count == 0 {
        out.push_str("\"min\": null, \"max\": null");
    } else {
        let _ = write!(out, "\"min\": {}, \"max\": {}", num(h.min), num(h.max));
    }
}

fn span_json(out: &mut String, s: &SpanRecord) {
    let _ = write!(out, "{{\"id\": {}, \"parent\": ", s.id.0);
    match s.parent {
        Some(p) => {
            let _ = write!(out, "{}", p.0);
        }
        None => out.push_str("null"),
    }
    let _ = write!(out, ", \"name\": \"{}\", \"node\": ", escape(&s.name));
    match s.node {
        Some(n) => {
            let _ = write!(out, "{n}");
        }
        None => out.push_str("null"),
    }
    let _ = write!(
        out,
        ", \"start\": {}, \"end\": {}, \"attrs\": {{",
        num(s.start),
        num(s.end)
    );
    for (i, (k, v)) in s.attrs.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "\"{}\": \"{}\"", escape(k), escape(v));
    }
    out.push_str("}}");
}

pub(crate) fn snapshot_to_json(snap: &ObsSnapshot) -> String {
    let mut out = String::with_capacity(4096);
    let _ = write!(out, "{{\"schema\": \"{SCHEMA}\", \"counters\": [");
    for (i, (key, value)) in snap.metrics.counters.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push('{');
        key_fields(&mut out, key);
        let _ = write!(out, ", \"value\": {value}}}");
    }
    out.push_str("], \"gauges\": [");
    for (i, (key, value)) in snap.metrics.gauges.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push('{');
        key_fields(&mut out, key);
        let _ = write!(out, ", \"value\": {}}}", num(*value));
    }
    out.push_str("], \"histograms\": [");
    for (i, (key, h)) in snap.metrics.histograms.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push('{');
        key_fields(&mut out, key);
        out.push_str(", ");
        histogram_json(&mut out, h);
        out.push('}');
    }
    out.push_str("], \"spans\": [");
    for (i, s) in snap.spans.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        span_json(&mut out, s);
    }
    let _ = write!(out, "], \"dropped_spans\": {}}}", snap.dropped_spans);
    out
}

pub(crate) fn snapshot_summary(snap: &ObsSnapshot) -> String {
    let mut out = String::new();
    if !snap.metrics.counters.is_empty() {
        out.push_str("counters:\n");
        let width = snap
            .metrics
            .counters
            .keys()
            .map(|k| k.to_string().len())
            .max()
            .unwrap_or(0);
        for (key, value) in &snap.metrics.counters {
            let _ = writeln!(out, "  {:<width$}  {}", key.to_string(), value);
        }
    }
    if !snap.metrics.gauges.is_empty() {
        out.push_str("gauges:\n");
        let width = snap
            .metrics
            .gauges
            .keys()
            .map(|k| k.to_string().len())
            .max()
            .unwrap_or(0);
        for (key, value) in &snap.metrics.gauges {
            let _ = writeln!(out, "  {:<width$}  {}", key.to_string(), value);
        }
    }
    if !snap.metrics.histograms.is_empty() {
        out.push_str("histograms:\n");
        let width = snap
            .metrics
            .histograms
            .keys()
            .map(|k| k.to_string().len())
            .max()
            .unwrap_or(0);
        for (key, h) in &snap.metrics.histograms {
            if h.count == 0 {
                let _ = writeln!(out, "  {:<width$}  count=0", key.to_string());
            } else {
                let _ = writeln!(
                    out,
                    "  {:<width$}  count={} sum={:.6} mean={:.6} min={:.6} max={:.6}",
                    key.to_string(),
                    h.count,
                    h.sum,
                    h.mean().unwrap_or(f64::NAN),
                    h.min,
                    h.max
                );
            }
        }
    }
    if out.is_empty() {
        out.push_str("no metrics recorded\n");
    }
    let mut tally: std::collections::BTreeMap<&str, usize> = std::collections::BTreeMap::new();
    for s in &snap.spans {
        *tally.entry(s.name.as_ref()).or_default() += 1;
    }
    let _ = writeln!(
        out,
        "spans: {} retained, {} evicted",
        snap.spans.len(),
        snap.dropped_spans
    );
    for (name, n) in tally {
        let _ = writeln!(out, "  {name}  x{n}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ObsRegistry;

    #[test]
    fn escape_handles_quotes_and_control_chars() {
        assert_eq!(escape("a\"b"), "a\\\"b");
        assert_eq!(escape("a\\b"), "a\\\\b");
        assert_eq!(escape("a\nb"), "a\\nb");
        assert_eq!(escape("a\u{1}b"), "a\\u0001b");
    }

    #[test]
    fn non_finite_numbers_serialize_as_null() {
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(f64::INFINITY), "null");
        assert_eq!(num(1.5), "1.5");
    }

    #[test]
    fn empty_snapshot_is_valid_shape() {
        let obs = ObsRegistry::new();
        let j = obs.to_json();
        assert!(j.contains("\"counters\": []"));
        assert!(j.contains("\"spans\": []"));
        assert!(j.contains("\"dropped_spans\": 0"));
        let s = obs.summary();
        assert!(s.contains("no metrics recorded"));
        assert!(s.contains("spans: 0 retained, 0 evicted"));
    }

    #[test]
    fn empty_histogram_exports_null_min_max() {
        let obs = ObsRegistry::new();
        let _ = obs.histogram("h", None, "", &[1.0]);
        let j = obs.to_json();
        assert!(j.contains("\"min\": null, \"max\": null"), "{j}");
    }
}
