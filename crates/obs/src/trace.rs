//! Virtual-time span tracing.
//!
//! A span is one timed runtime operation — an RMI round trip, a migration
//! protocol step, a codebase load, a monitoring round. Spans carry the
//! deployment's *virtual* timestamps, an optional parent link (so a
//! migration's protocol steps nest under the requesting operation even when
//! they execute on different nodes — the parent id travels on the wire),
//! the recording node and free-form attributes.
//!
//! Finished spans land in a bounded ring buffer; an unfinished span that is
//! dropped records nothing (abandoned operation). A disabled tracer hands
//! out inert [`ActiveSpan`]s whose every method is a branch.

use std::borrow::Cow;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Identity of one recorded span, unique within its tracer.
///
/// Ids start at 1: `0` is reserved as the on-the-wire encoding of "no
/// parent" (see [`SpanId::to_wire`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

impl SpanId {
    /// Encodes an optional span id for a wire message (`0` = none).
    pub fn to_wire(id: Option<SpanId>) -> u64 {
        id.map_or(0, |s| s.0)
    }

    /// Decodes a wire-encoded span id (`0` = none).
    pub fn from_wire(raw: u64) -> Option<SpanId> {
        (raw != 0).then_some(SpanId(raw))
    }
}

/// One finished span.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanRecord {
    /// This span's id.
    pub id: SpanId,
    /// The enclosing span, if any.
    pub parent: Option<SpanId>,
    /// Operation name, e.g. `"migrate.transfer"`.
    pub name: Cow<'static, str>,
    /// Physical node that recorded the span, if known.
    pub node: Option<u32>,
    /// Virtual start time (seconds).
    pub start: f64,
    /// Virtual end time (seconds); equals `start` for instant spans.
    pub end: f64,
    /// Free-form key/value attributes.
    pub attrs: Vec<(Cow<'static, str>, String)>,
}

impl SpanRecord {
    /// Span duration in virtual seconds.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

struct SpanBuf {
    buf: VecDeque<SpanRecord>,
    capacity: usize,
    dropped: u64,
}

struct TracerInner {
    next_id: AtomicU64,
    spans: Mutex<SpanBuf>,
}

/// The tracing half of an observability scope. Cloning shares the buffer.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<TracerInner>>,
}

impl Tracer {
    /// An enabled tracer retaining at most `capacity` finished spans.
    pub fn new(capacity: usize) -> Self {
        Tracer {
            inner: Some(Arc::new(TracerInner {
                next_id: AtomicU64::new(1),
                spans: Mutex::new(SpanBuf {
                    buf: VecDeque::new(),
                    capacity: capacity.max(1),
                    dropped: 0,
                }),
            })),
        }
    }

    /// A tracer that records nothing.
    pub fn disabled() -> Self {
        Tracer { inner: None }
    }

    /// Whether this tracer records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Starts a span at virtual time `start`. Chain [`ActiveSpan::node`],
    /// [`ActiveSpan::parent`] and [`ActiveSpan::attr`], then call
    /// [`ActiveSpan::finish`]; dropping without finishing records nothing.
    pub fn span(&self, name: impl Into<Cow<'static, str>>, start: f64) -> ActiveSpan {
        let Some(inner) = &self.inner else {
            return ActiveSpan {
                tracer: None,
                record: None,
            };
        };
        let id = SpanId(inner.next_id.fetch_add(1, Ordering::Relaxed));
        ActiveSpan {
            tracer: Some(Arc::clone(inner)),
            record: Some(SpanRecord {
                id,
                parent: None,
                name: name.into(),
                node: None,
                start,
                end: start,
                attrs: Vec::new(),
            }),
        }
    }

    /// Finished spans in completion order, oldest first.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        self.inner.as_ref().map_or_else(Vec::new, |inner| {
            let buf = inner.spans.lock().unwrap_or_else(|e| e.into_inner());
            buf.buf.iter().cloned().collect()
        })
    }

    /// Spans evicted from the ring so far.
    pub fn dropped(&self) -> u64 {
        self.inner.as_ref().map_or(0, |inner| {
            inner
                .spans
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .dropped
        })
    }

    /// Number of retained spans.
    pub fn len(&self) -> usize {
        self.inner.as_ref().map_or(0, |inner| {
            inner
                .spans
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .buf
                .len()
        })
    }

    /// Whether no spans are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all retained spans (eviction counter is kept).
    pub fn clear(&self) {
        if let Some(inner) = &self.inner {
            inner
                .spans
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .buf
                .clear();
        }
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tracer({} spans)", self.len())
    }
}

/// A span under construction. Send + 'static, so it can be finished from a
/// different thread than the one that started it (e.g. an `ainvoke` span
/// finished by the result handle).
pub struct ActiveSpan {
    tracer: Option<Arc<TracerInner>>,
    record: Option<SpanRecord>,
}

impl ActiveSpan {
    /// This span's id (`None` for a disabled tracer) — thread it to child
    /// operations, across the wire via [`SpanId::to_wire`] if necessary.
    pub fn id(&self) -> Option<SpanId> {
        self.record.as_ref().map(|r| r.id)
    }

    /// The span's virtual start time (`None` for a disabled tracer).
    pub fn start_time(&self) -> Option<f64> {
        self.record.as_ref().map(|r| r.start)
    }

    /// Sets the recording node.
    pub fn node(mut self, node: u32) -> Self {
        if let Some(r) = &mut self.record {
            r.node = Some(node);
        }
        self
    }

    /// Sets the parent span.
    pub fn parent(mut self, parent: Option<SpanId>) -> Self {
        if let Some(r) = &mut self.record {
            r.parent = parent;
        }
        self
    }

    /// Attaches an attribute.
    pub fn attr(mut self, key: &'static str, value: impl ToString) -> Self {
        if let Some(r) = &mut self.record {
            r.attrs.push((Cow::Borrowed(key), value.to_string()));
        }
        self
    }

    /// Finishes the span at virtual time `end`, committing it to the ring.
    pub fn finish(mut self, end: f64) {
        let (Some(tracer), Some(mut record)) = (self.tracer.take(), self.record.take()) else {
            return;
        };
        record.end = end.max(record.start);
        let mut buf = tracer.spans.lock().unwrap_or_else(|e| e.into_inner());
        if buf.buf.len() == buf.capacity {
            buf.buf.pop_front();
            buf.dropped += 1;
        }
        buf.buf.push_back(record);
    }
}

// -------------------------------------------------------------- tree output

/// Checks that `spans` form well-formed trees: every `parent` id is present
/// in the slice, intervals are ordered (`end >= start`), and each child's
/// interval lies within its parent's (up to `1e-9` slack for float noise).
///
/// Returns the first violation as a human-readable message. Note that a
/// ring buffer that evicted spans can legitimately contain orphans — only
/// validate unevicted traces.
pub fn validate_spans(spans: &[SpanRecord]) -> Result<(), String> {
    const EPS: f64 = 1e-9;
    let by_id: HashMap<SpanId, &SpanRecord> = spans.iter().map(|s| (s.id, s)).collect();
    if by_id.len() != spans.len() {
        return Err("duplicate span ids".into());
    }
    for s in spans {
        // NaN endpoints count as inverted too, hence partial_cmp.
        let ordered = s
            .end
            .partial_cmp(&s.start)
            .is_some_and(|o| o != std::cmp::Ordering::Less);
        if !ordered {
            return Err(format!(
                "span {} [{} .. {}] is inverted",
                s.name, s.start, s.end
            ));
        }
        if let Some(pid) = s.parent {
            let Some(p) = by_id.get(&pid) else {
                return Err(format!("span {} has orphan parent {:?}", s.name, pid));
            };
            if s.start + EPS < p.start || s.end > p.end + EPS {
                return Err(format!(
                    "child {} [{} .. {}] escapes parent {} [{} .. {}]",
                    s.name, s.start, s.end, p.name, p.start, p.end
                ));
            }
        }
    }
    Ok(())
}

/// Renders spans as an indented tree (children under parents, both sorted
/// by start time), with virtual timestamps. Spans whose parent is not in
/// the slice (evicted or foreign) render as roots.
pub fn render_tree(spans: &[SpanRecord]) -> String {
    let by_id: HashMap<SpanId, &SpanRecord> = spans.iter().map(|s| (s.id, s)).collect();
    let mut children: HashMap<SpanId, Vec<&SpanRecord>> = HashMap::new();
    let mut roots: Vec<&SpanRecord> = Vec::new();
    for s in spans {
        match s.parent.filter(|p| by_id.contains_key(p)) {
            Some(p) => children.entry(p).or_default().push(s),
            None => roots.push(s),
        }
    }
    let sort_key = |s: &&SpanRecord| (s.start.to_bits() as i64, s.id);
    roots.sort_by_key(sort_key);
    for v in children.values_mut() {
        v.sort_by_key(sort_key);
    }
    let mut out = String::new();
    let mut stack: Vec<(&SpanRecord, usize)> = roots.into_iter().rev().map(|s| (s, 0)).collect();
    while let Some((s, depth)) = stack.pop() {
        render_line(&mut out, s, depth);
        if let Some(kids) = children.get(&s.id) {
            for k in kids.iter().rev() {
                stack.push((k, depth + 1));
            }
        }
    }
    out
}

fn render_line(out: &mut String, s: &SpanRecord, depth: usize) {
    use std::fmt::Write as _;
    for _ in 0..depth {
        out.push_str("  ");
    }
    let _ = write!(out, "[{:>10.4} .. {:>10.4}] {}", s.start, s.end, s.name);
    if let Some(n) = s.node {
        let _ = write!(out, " (n{n})");
    }
    for (k, v) in &s.attrs {
        let _ = write!(out, " {k}={v}");
    }
    out.push('\n');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_with_parent_links() {
        let t = Tracer::new(16);
        let root = t.span("migrate", 1.0).node(0).attr("obj", "obj7");
        let root_id = root.id();
        assert!(root_id.is_some());
        let child = t.span("migrate.request", 1.1).node(0).parent(root_id);
        child.finish(1.9);
        root.finish(2.0);
        let spans = t.snapshot();
        assert_eq!(spans.len(), 2);
        // Completion order: child first.
        assert_eq!(spans[0].name, "migrate.request");
        assert_eq!(spans[0].parent, root_id);
        assert_eq!(spans[1].name, "migrate");
        assert_eq!(spans[1].attrs, vec![("obj".into(), "obj7".to_owned())]);
        validate_spans(&spans).unwrap();
    }

    #[test]
    fn wire_encoding_round_trips() {
        assert_eq!(SpanId::to_wire(None), 0);
        assert_eq!(SpanId::from_wire(0), None);
        let id = Some(SpanId(42));
        assert_eq!(SpanId::from_wire(SpanId::to_wire(id)), id);
    }

    #[test]
    fn abandoned_span_records_nothing() {
        let t = Tracer::new(16);
        drop(t.span("abandoned", 0.0));
        assert!(t.is_empty());
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let t = Tracer::new(2);
        for i in 0..5 {
            t.span("s", i as f64).finish(i as f64 + 0.5);
        }
        let spans = t.snapshot();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].start, 3.0);
        assert_eq!(t.dropped(), 3);
    }

    #[test]
    fn finish_clamps_inverted_intervals() {
        let t = Tracer::new(4);
        t.span("s", 5.0).finish(4.0);
        let spans = t.snapshot();
        assert_eq!(spans[0].end, 5.0);
        validate_spans(&spans).unwrap();
    }

    #[test]
    fn validator_flags_orphans_and_escapes() {
        let mk = |id, parent, start: f64, end: f64| SpanRecord {
            id: SpanId(id),
            parent,
            name: Cow::Borrowed("x"),
            node: None,
            start,
            end,
            attrs: Vec::new(),
        };
        let orphan = vec![mk(2, Some(SpanId(1)), 0.0, 1.0)];
        assert!(validate_spans(&orphan).unwrap_err().contains("orphan"));
        let escape = vec![mk(1, None, 0.0, 1.0), mk(2, Some(SpanId(1)), 0.5, 2.0)];
        assert!(validate_spans(&escape).unwrap_err().contains("escapes"));
        let ok = vec![mk(1, None, 0.0, 1.0), mk(2, Some(SpanId(1)), 0.2, 0.8)];
        validate_spans(&ok).unwrap();
    }

    #[test]
    fn tree_rendering_nests_and_timestamps() {
        let t = Tracer::new(16);
        let root = t.span("migrate", 1.0).node(0);
        let rid = root.id();
        t.span("migrate.quiesce", 1.25)
            .node(1)
            .parent(rid)
            .finish(1.5);
        t.span("migrate.transfer", 1.5)
            .node(1)
            .parent(rid)
            .finish(1.75);
        root.finish(2.0);
        let out = render_tree(&t.snapshot());
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("migrate") && lines[0].starts_with('['));
        assert!(lines[1].starts_with("  [") && lines[1].contains("migrate.quiesce"));
        assert!(lines[2].starts_with("  [") && lines[2].contains("migrate.transfer"));
        assert!(lines[0].contains("1.0000") && lines[0].contains("2.0000"));
        assert!(lines[1].contains("(n1)"));
    }

    #[test]
    fn disabled_tracer_is_inert() {
        let t = Tracer::disabled();
        let s = t.span("s", 0.0).node(1).attr("k", 1);
        assert_eq!(s.id(), None);
        assert_eq!(s.start_time(), None);
        s.finish(1.0);
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn concurrent_recording_stays_well_formed() {
        let t = Tracer::new(100_000);
        let root = t.span("root", 0.0).node(0);
        let rid = root.id();
        let threads: Vec<_> = (0..8)
            .map(|i| {
                let t = t.clone();
                std::thread::spawn(move || {
                    for j in 0..500u32 {
                        let start = 1.0 + (i as f64) * 0.001 + (j as f64) * 1e-6;
                        t.span("child", start)
                            .node(i as u32)
                            .parent(rid)
                            .finish(start + 1e-7);
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        root.finish(10.0);
        let spans = t.snapshot();
        assert_eq!(spans.len(), 8 * 500 + 1);
        validate_spans(&spans).unwrap();
    }
}
