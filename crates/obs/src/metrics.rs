//! Lock-cheap metrics: counters, gauges and fixed-bucket histograms.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are resolved once through
//! the registry (one `RwLock` read + hash lookup) and then record through an
//! `Arc<AtomicU64>` — the hot path is a branch plus a relaxed atomic op.
//! A disabled registry hands out empty handles whose record calls are a
//! single branch.

use std::borrow::Cow;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Standard bucket-bound sets used by the runtime's instrumentation.
pub mod bounds {
    /// Virtual-second latency buckets: 100 µs .. 10 s.
    pub const LATENCY_SECONDS: &[f64] =
        &[1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1.0, 5.0, 10.0];
    /// Message/state size buckets: 64 B .. 4 MiB.
    pub const SIZE_BYTES: &[f64] = &[
        64.0,
        256.0,
        1024.0,
        4096.0,
        16384.0,
        65536.0,
        262_144.0,
        1_048_576.0,
        4_194_304.0,
    ];
}

/// A metric's identity: what is measured, where, and on which component.
///
/// `node` is the physical node id (`None` for deployment-global metrics);
/// `component` further splits a name (a link class, an RMI mode, a message
/// tag — `""` when there is nothing to split by).
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MetricKey {
    /// Metric name, e.g. `"net.latency"`.
    pub name: Cow<'static, str>,
    /// Physical node id, if the metric is per-node.
    pub node: Option<u32>,
    /// Sub-component label, e.g. a link class or message tag.
    pub component: Cow<'static, str>,
}

impl MetricKey {
    /// Builds a key from its parts.
    pub fn new(name: impl Into<Cow<'static, str>>, node: Option<u32>, component: &str) -> Self {
        MetricKey {
            name: name.into(),
            node,
            component: Cow::Owned(component.to_owned()),
        }
    }
}

impl std::fmt::Display for MetricKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name)?;
        if let Some(n) = self.node {
            write!(f, "{{n{n}}}")?;
        }
        if !self.component.is_empty() {
            write!(f, "[{}]", self.component)?;
        }
        Ok(())
    }
}

// ------------------------------------------------------------------ handles

/// A monotonically increasing counter handle. Clone-cheap; an empty handle
/// (from a disabled registry) records nothing.
#[derive(Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 for a disabled handle).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A last-value-wins gauge handle storing an `f64`.
#[derive(Clone, Default)]
pub struct Gauge(Option<Arc<AtomicU64>>);

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        if let Some(g) = &self.0 {
            g.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value (0.0 for a disabled handle).
    pub fn get(&self) -> f64 {
        self.0
            .as_ref()
            .map_or(0.0, |g| f64::from_bits(g.load(Ordering::Relaxed)))
    }
}

/// Shared storage of one histogram.
#[derive(Debug)]
pub(crate) struct HistoCore {
    /// Ascending bucket *upper* bounds; an implicit `+inf` bucket follows.
    bounds: Vec<f64>,
    /// One slot per bound, plus the overflow bucket.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// `f64` bits, updated by CAS.
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

fn atomic_f64_update(cell: &AtomicU64, f: impl Fn(f64) -> f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let new = f(f64::from_bits(cur)).to_bits();
        if new == cur {
            return;
        }
        match cell.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

impl HistoCore {
    fn new(bucket_bounds: &[f64]) -> Self {
        HistoCore {
            bounds: bucket_bounds.to_vec(),
            buckets: (0..=bucket_bounds.len())
                .map(|_| AtomicU64::new(0))
                .collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0f64.to_bits()),
            min: AtomicU64::new(f64::INFINITY.to_bits()),
            max: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    fn observe(&self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        atomic_f64_update(&self.sum, |s| s + v);
        atomic_f64_update(&self.min, |m| m.min(v));
        atomic_f64_update(&self.max, |m| m.max(v));
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: f64::from_bits(self.sum.load(Ordering::Relaxed)),
            min: f64::from_bits(self.min.load(Ordering::Relaxed)),
            max: f64::from_bits(self.max.load(Ordering::Relaxed)),
        }
    }
}

/// A fixed-bucket histogram handle.
#[derive(Clone, Default)]
pub struct Histogram(Option<Arc<HistoCore>>);

impl Histogram {
    /// Records one observation.
    #[inline]
    pub fn observe(&self, v: f64) {
        if let Some(h) = &self.0 {
            h.observe(v);
        }
    }

    /// Point-in-time copy (empty for a disabled handle).
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.0
            .as_ref()
            .map_or_else(HistogramSnapshot::empty, |h| h.snapshot())
    }
}

// ---------------------------------------------------------------- snapshots

/// Point-in-time copy of one histogram. Mergeable: merging snapshots with
/// identical bounds is associative and commutative (bucket counts and counts
/// add, min/max combine; `sum` adds — floating-point addition, so equal up
/// to rounding).
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSnapshot {
    /// Ascending bucket upper bounds.
    pub bounds: Vec<f64>,
    /// Per-bucket counts (`bounds.len() + 1` entries; last is overflow).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Smallest observation (`+inf` when empty).
    pub min: f64,
    /// Largest observation (`-inf` when empty).
    pub max: f64,
}

impl HistogramSnapshot {
    /// An empty snapshot with no buckets — the merge identity for any
    /// bounds (merging it adopts the other side's bounds).
    pub fn empty() -> Self {
        HistogramSnapshot {
            bounds: Vec::new(),
            buckets: vec![0],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Mean observation, if any.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Merges `other` into `self`. Fails (leaving `self` unchanged) when
    /// both sides are non-empty with different bucket bounds.
    pub fn merge(&mut self, other: &HistogramSnapshot) -> Result<(), MergeError> {
        if other.count == 0 && other.bounds.is_empty() {
            return Ok(());
        }
        if self.count == 0 && self.bounds.is_empty() {
            *self = other.clone();
            return Ok(());
        }
        if self.bounds != other.bounds {
            return Err(MergeError::BoundsMismatch);
        }
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        Ok(())
    }
}

/// Why a snapshot merge was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MergeError {
    /// The two histograms were recorded with different bucket bounds.
    BoundsMismatch,
}

impl std::fmt::Display for MergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MergeError::BoundsMismatch => write!(f, "histogram bucket bounds differ"),
        }
    }
}

impl std::error::Error for MergeError {}

/// Point-in-time copy of a whole [`MetricsRegistry`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by key.
    pub counters: BTreeMap<MetricKey, u64>,
    /// Gauge values by key.
    pub gauges: BTreeMap<MetricKey, f64>,
    /// Histogram snapshots by key.
    pub histograms: BTreeMap<MetricKey, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Merges `other` into `self`: counters add, gauges keep the larger
    /// value (associative/commutative), histograms merge per key
    /// (bounds-mismatched entries are left as `self`'s).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            let e = self.gauges.entry(k.clone()).or_insert(f64::NEG_INFINITY);
            *e = e.max(*v);
        }
        for (k, h) in &other.histograms {
            let _ = self
                .histograms
                .entry(k.clone())
                .or_insert_with(HistogramSnapshot::empty)
                .merge(h);
        }
    }

    /// Sum of all counters sharing `name` (any node, any component).
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.name == name)
            .map(|(_, v)| v)
            .sum()
    }

    /// Sum of `sum` over all histograms sharing `name`.
    pub fn histogram_sum(&self, name: &str) -> f64 {
        self.histograms
            .iter()
            .filter(|(k, _)| k.name == name)
            .map(|(_, h)| h.sum)
            .sum()
    }
}

// ----------------------------------------------------------------- registry

#[derive(Default)]
struct MetricsInner {
    counters: RwLock<HashMap<MetricKey, Arc<AtomicU64>>>,
    gauges: RwLock<HashMap<MetricKey, Arc<AtomicU64>>>,
    histograms: RwLock<HashMap<MetricKey, Arc<HistoCore>>>,
}

/// The metrics half of an observability scope. Cloning shares storage; a
/// disabled registry hands out no-op handles.
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    inner: Option<Arc<MetricsInner>>,
}

fn read_or_recover<T>(lock: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(|e| e.into_inner())
}

fn write_or_recover<T>(lock: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(|e| e.into_inner())
}

impl MetricsRegistry {
    /// An enabled, empty registry.
    pub fn new() -> Self {
        MetricsRegistry {
            inner: Some(Arc::new(MetricsInner::default())),
        }
    }

    /// A registry whose handles record nothing.
    pub fn disabled() -> Self {
        MetricsRegistry { inner: None }
    }

    /// Whether this registry records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Resolves (creating on first use) a counter.
    pub fn counter(&self, name: &'static str, node: Option<u32>, component: &str) -> Counter {
        let Some(inner) = &self.inner else {
            return Counter(None);
        };
        let key = MetricKey::new(name, node, component);
        if let Some(c) = read_or_recover(&inner.counters).get(&key) {
            return Counter(Some(Arc::clone(c)));
        }
        let mut map = write_or_recover(&inner.counters);
        let c = map
            .entry(key)
            .or_insert_with(|| Arc::new(AtomicU64::new(0)));
        Counter(Some(Arc::clone(c)))
    }

    /// Resolves (creating on first use) a gauge.
    pub fn gauge(&self, name: &'static str, node: Option<u32>, component: &str) -> Gauge {
        let Some(inner) = &self.inner else {
            return Gauge(None);
        };
        let key = MetricKey::new(name, node, component);
        if let Some(g) = read_or_recover(&inner.gauges).get(&key) {
            return Gauge(Some(Arc::clone(g)));
        }
        let mut map = write_or_recover(&inner.gauges);
        let g = map
            .entry(key)
            .or_insert_with(|| Arc::new(AtomicU64::new(0f64.to_bits())));
        Gauge(Some(Arc::clone(g)))
    }

    /// Resolves (creating on first use) a histogram. The bounds are fixed at
    /// first use; later callers get the existing histogram regardless of the
    /// bounds they pass.
    pub fn histogram(
        &self,
        name: &'static str,
        node: Option<u32>,
        component: &str,
        bucket_bounds: &[f64],
    ) -> Histogram {
        let Some(inner) = &self.inner else {
            return Histogram(None);
        };
        let key = MetricKey::new(name, node, component);
        if let Some(h) = read_or_recover(&inner.histograms).get(&key) {
            return Histogram(Some(Arc::clone(h)));
        }
        let mut map = write_or_recover(&inner.histograms);
        let h = map
            .entry(key)
            .or_insert_with(|| Arc::new(HistoCore::new(bucket_bounds)));
        Histogram(Some(Arc::clone(h)))
    }

    /// A consistent-enough point-in-time copy of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let Some(inner) = &self.inner else {
            return MetricsSnapshot::default();
        };
        MetricsSnapshot {
            counters: read_or_recover(&inner.counters)
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                .collect(),
            gauges: read_or_recover(&inner.gauges)
                .iter()
                .map(|(k, v)| (k.clone(), f64::from_bits(v.load(Ordering::Relaxed))))
                .collect(),
            histograms: read_or_recover(&inner.histograms)
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_accumulate() {
        let m = MetricsRegistry::new();
        let c = m.counter("c", Some(1), "x");
        c.inc();
        c.add(4);
        // Re-resolving yields the same storage.
        assert_eq!(m.counter("c", Some(1), "x").get(), 5);
        let g = m.gauge("g", None, "");
        g.set(2.5);
        g.set(-1.0);
        assert_eq!(m.gauge("g", None, "").get(), -1.0);
    }

    #[test]
    fn histogram_buckets_count_and_stats() {
        let m = MetricsRegistry::new();
        let h = m.histogram("h", None, "", &[1.0, 10.0]);
        for v in [0.5, 0.9, 5.0, 50.0] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.buckets, vec![2, 1, 1]);
        assert_eq!(s.count, 4);
        assert!((s.sum - 56.4).abs() < 1e-9);
        assert_eq!(s.min, 0.5);
        assert_eq!(s.max, 50.0);
        assert_eq!(s.mean(), Some(56.4 / 4.0));
    }

    #[test]
    fn histogram_merge_adds_and_rejects_mismatch() {
        let m = MetricsRegistry::new();
        let a = m.histogram("a", None, "", &[1.0]);
        let b = m.histogram("b", None, "", &[1.0]);
        a.observe(0.5);
        b.observe(2.0);
        let mut sa = a.snapshot();
        sa.merge(&b.snapshot()).unwrap();
        assert_eq!(sa.count, 2);
        assert_eq!(sa.buckets, vec![1, 1]);
        assert_eq!(sa.min, 0.5);
        assert_eq!(sa.max, 2.0);

        let c = m.histogram("c", None, "", &[9.0]);
        c.observe(1.0);
        assert_eq!(sa.merge(&c.snapshot()), Err(MergeError::BoundsMismatch));
        // Unchanged on failure.
        assert_eq!(sa.count, 2);
    }

    #[test]
    fn empty_snapshot_is_merge_identity() {
        let m = MetricsRegistry::new();
        let h = m.histogram("h", None, "", &[1.0, 2.0]);
        h.observe(1.5);
        let orig = h.snapshot();

        let mut left = HistogramSnapshot::empty();
        left.merge(&orig).unwrap();
        assert_eq!(left, orig);

        let mut right = orig.clone();
        right.merge(&HistogramSnapshot::empty()).unwrap();
        assert_eq!(right, orig);
    }

    #[test]
    fn registry_snapshot_merge_combines_scopes() {
        let a = MetricsRegistry::new();
        let b = MetricsRegistry::new();
        a.counter("c", Some(0), "").add(2);
        b.counter("c", Some(0), "").add(3);
        b.counter("c", Some(1), "").add(7);
        a.gauge("g", None, "").set(1.0);
        b.gauge("g", None, "").set(4.0);
        let mut s = a.snapshot();
        s.merge(&b.snapshot());
        assert_eq!(s.counters[&MetricKey::new("c", Some(0), "")], 5);
        assert_eq!(s.counters[&MetricKey::new("c", Some(1), "")], 7);
        assert_eq!(s.gauges[&MetricKey::new("g", None, "")], 4.0);
        assert_eq!(s.counter_total("c"), 12);
    }

    #[test]
    fn concurrent_observations_are_not_lost() {
        let m = MetricsRegistry::new();
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    let c = m.counter("hits", Some(0), "");
                    let h = m.histogram("lat", Some(0), "", &[0.5]);
                    for i in 0..1000 {
                        c.inc();
                        h.observe(if i % 2 == 0 { 0.1 } else { 0.9 });
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = m.snapshot();
        assert_eq!(s.counters[&MetricKey::new("hits", Some(0), "")], 8000);
        let h = &s.histograms[&MetricKey::new("lat", Some(0), "")];
        assert_eq!(h.count, 8000);
        assert_eq!(h.buckets, vec![4000, 4000]);
        assert!((h.sum - (4000.0 * 0.1 + 4000.0 * 0.9)).abs() < 1e-6);
    }

    #[test]
    fn key_display_is_compact() {
        assert_eq!(
            MetricKey::new("x", Some(3), "wan").to_string(),
            "x{n3}[wan]"
        );
        assert_eq!(MetricKey::new("x", None, "").to_string(), "x");
    }
}
