//! # jsym-obs — metrics + tracing for the jsymphony runtime
//!
//! The paper's JRS exposes ~40 *system* parameters but gives no visibility
//! into the runtime itself: its own Figure 5 anomaly ("more than 10 nodes
//! increases execution time") had to be explained by guesswork about RMI
//! overhead. This crate is the measurement substrate that removes the
//! guesswork:
//!
//! * a **metrics registry** ([`MetricsRegistry`]) of lock-cheap counters,
//!   gauges and fixed-bucket histograms, keyed by `(name, node, component)`
//!   ([`MetricKey`]), with mergeable point-in-time snapshots;
//! * a **span tracer** ([`Tracer`]) recording virtual-time start/end and
//!   parent links for runtime operations (RMIs, migration protocol steps,
//!   codebase loads, checkpoints, monitoring rounds, failover);
//! * an [`ObsRegistry`] bundling both per deployment, with JSON export and
//!   a plain-text summary table for the JS-Shell.
//!
//! Everything supports a **no-op mode** ([`ObsRegistry::disabled`]): handles
//! carry `Option<Arc<..>>` internally, so a disabled registry costs one
//! branch per record call — cheap enough to leave instrumentation compiled
//! into every hot path.
//!
//! The crate is deliberately `std`-only: it sits underneath every other
//! workspace crate and must never contribute a dependency cycle.

#![warn(missing_docs)]

mod json;
mod metrics;
mod trace;

pub use metrics::{
    bounds, Counter, Gauge, Histogram, HistogramSnapshot, MergeError, MetricKey, MetricsRegistry,
    MetricsSnapshot,
};
pub use trace::{render_tree, validate_spans, ActiveSpan, SpanId, SpanRecord, Tracer};

/// Default ring-buffer capacity of the span tracer.
pub const DEFAULT_SPAN_CAPACITY: usize = 65_536;

/// Per-deployment observability scope: a metrics registry plus a span
/// tracer. Cloning shares the underlying storage.
#[derive(Clone)]
pub struct ObsRegistry {
    metrics: MetricsRegistry,
    tracer: Tracer,
}

impl ObsRegistry {
    /// An enabled registry with the default span capacity.
    pub fn new() -> Self {
        Self::with_span_capacity(DEFAULT_SPAN_CAPACITY)
    }

    /// An enabled registry whose tracer retains at most `capacity` finished
    /// spans (oldest evicted first).
    pub fn with_span_capacity(capacity: usize) -> Self {
        ObsRegistry {
            metrics: MetricsRegistry::new(),
            tracer: Tracer::new(capacity),
        }
    }

    /// A no-op registry: every handle it returns records nothing, at the
    /// cost of a branch per call.
    pub fn disabled() -> Self {
        ObsRegistry {
            metrics: MetricsRegistry::disabled(),
            tracer: Tracer::disabled(),
        }
    }

    /// Whether this registry records anything.
    pub fn is_enabled(&self) -> bool {
        self.metrics.is_enabled()
    }

    /// The metrics half.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The tracing half.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Resolves (creating on first use) the counter keyed
    /// `(name, node, component)`.
    pub fn counter(&self, name: &'static str, node: Option<u32>, component: &str) -> Counter {
        self.metrics.counter(name, node, component)
    }

    /// Resolves (creating on first use) the gauge keyed
    /// `(name, node, component)`.
    pub fn gauge(&self, name: &'static str, node: Option<u32>, component: &str) -> Gauge {
        self.metrics.gauge(name, node, component)
    }

    /// Resolves (creating on first use) the histogram keyed
    /// `(name, node, component)` with the given bucket upper bounds.
    pub fn histogram(
        &self,
        name: &'static str,
        node: Option<u32>,
        component: &str,
        bucket_bounds: &[f64],
    ) -> Histogram {
        self.metrics.histogram(name, node, component, bucket_bounds)
    }

    /// A consistent-enough point-in-time copy of everything recorded.
    pub fn snapshot(&self) -> ObsSnapshot {
        ObsSnapshot {
            metrics: self.metrics.snapshot(),
            spans: self.tracer.snapshot(),
            dropped_spans: self.tracer.dropped(),
        }
    }

    /// JSON export of the current state (see [`ObsSnapshot::to_json`]).
    pub fn to_json(&self) -> String {
        self.snapshot().to_json()
    }

    /// Plain-text summary table of the current state (for the JS-Shell).
    pub fn summary(&self) -> String {
        self.snapshot().summary()
    }
}

impl Default for ObsRegistry {
    fn default() -> Self {
        ObsRegistry::new()
    }
}

impl std::fmt::Debug for ObsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ObsRegistry({})",
            if self.is_enabled() {
                "enabled"
            } else {
                "no-op"
            }
        )
    }
}

/// Point-in-time copy of an [`ObsRegistry`]: all metrics plus the retained
/// span ring.
#[derive(Clone, Debug)]
pub struct ObsSnapshot {
    /// Counters, gauges and histograms.
    pub metrics: MetricsSnapshot,
    /// Finished spans, in completion order (oldest first).
    pub spans: Vec<SpanRecord>,
    /// Spans evicted from the ring buffer since creation.
    pub dropped_spans: u64,
}

impl ObsSnapshot {
    /// Serializes the snapshot as a self-describing JSON document
    /// (`{"schema": "jsym-obs/v1", "counters": [...], "gauges": [...],
    /// "histograms": [...], "spans": [...], "dropped_spans": N}`).
    pub fn to_json(&self) -> String {
        json::snapshot_to_json(self)
    }

    /// Renders the metrics as a plain-text table plus a span tally.
    pub fn summary(&self) -> String {
        json::snapshot_summary(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_records_nothing() {
        let obs = ObsRegistry::disabled();
        assert!(!obs.is_enabled());
        obs.counter("c", Some(1), "x").inc();
        obs.gauge("g", None, "").set(3.0);
        obs.histogram("h", None, "", bounds::LATENCY_SECONDS)
            .observe(0.5);
        obs.tracer().span("s", 0.0).finish(1.0);
        let snap = obs.snapshot();
        assert!(snap.metrics.counters.is_empty());
        assert!(snap.metrics.gauges.is_empty());
        assert!(snap.metrics.histograms.is_empty());
        assert!(snap.spans.is_empty());
    }

    #[test]
    fn enabled_registry_round_trips_through_snapshot() {
        let obs = ObsRegistry::new();
        assert!(obs.is_enabled());
        obs.counter("rmi.calls", Some(0), "sinvoke").add(3);
        obs.gauge("pool.size", None, "").set(7.5);
        obs.histogram("lat", Some(0), "lan100", &[0.1, 1.0])
            .observe(0.05);
        let s = obs.tracer().span("rmi.sinvoke", 1.0).node(0);
        s.finish(2.0);
        let snap = obs.snapshot();
        assert_eq!(
            snap.metrics.counters[&MetricKey::new("rmi.calls", Some(0), "sinvoke")],
            3
        );
        assert_eq!(
            snap.metrics.gauges[&MetricKey::new("pool.size", None, "")],
            7.5
        );
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.spans[0].name, "rmi.sinvoke");
        assert_eq!(snap.spans[0].start, 1.0);
        assert_eq!(snap.spans[0].end, 2.0);
    }

    #[test]
    fn json_export_is_parseable_shape() {
        let obs = ObsRegistry::new();
        obs.counter("c", Some(2), "a\"b").inc();
        obs.histogram("h", None, "", &[1.0]).observe(0.5);
        obs.tracer().span("s", 0.25).attr("k", "v\"w").finish(0.75);
        let j = obs.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'), "{j}");
        assert!(j.contains("\"schema\": \"jsym-obs/v1\""));
        assert!(j.contains("a\\\"b"), "component must be escaped: {j}");
        assert!(j.contains("\"spans\""));
        // Balanced braces/brackets (cheap structural sanity check without a
        // JSON parser; the suite crate parses it with serde_json for real).
        let balance = |open: char, close: char| {
            j.chars().filter(|&c| c == open).count() == j.chars().filter(|&c| c == close).count()
        };
        assert!(balance('{', '}'));
        assert!(balance('[', ']'));
    }

    #[test]
    fn summary_mentions_recorded_names() {
        let obs = ObsRegistry::new();
        obs.counter("msg.sent", Some(1), "invoke").add(42);
        obs.histogram("net.latency", Some(1), "lan100", bounds::LATENCY_SECONDS)
            .observe(0.003);
        let s = obs.summary();
        assert!(s.contains("msg.sent"), "{s}");
        assert!(s.contains("net.latency"), "{s}");
        assert!(s.contains("42"), "{s}");
    }
}
