//! The parameter aggregation plane: cached samples, incremental rollups and
//! an indexed free-machine heap behind the allocation and automigration
//! paths.
//!
//! The slow path recomputes everything from fresh [`SimMachine`] snapshots on
//! every query — correct, but O(machines) per allocation and O(nodes) per
//! automigration round. The plane keeps three derived structures that make
//! those paths cheap while provably agreeing with the slow path on the same
//! sample inputs (see `DESIGN.md` §9):
//!
//! * a per-machine [`SampleCache`] with a virtual-time TTL, so one monitoring
//!   interval's worth of queries shares one sample per machine;
//! * per-component [`ParamRollup`]s (running sum + count per parameter) on
//!   cluster/site/domain entries, updated incrementally as nodes attach,
//!   detach and refresh instead of by descending the hierarchy;
//! * a lazy-deletion min-heap over free machines keyed by smoothed
//!   `CpuLoad1`, so `alloc_any`/`alloc_many` pop candidates in exactly the
//!   `(load, id)` order the slow path's full scan would rank them.
//!
//! A dirty set tracks virtual nodes whose cached sample moved past a
//! relative threshold since the last automigration scan; dirty-mode scans
//! re-evaluate only those plus the currently-violating watch set.
//!
//! [`SimMachine`]: jsym_sysmon::SimMachine

use crate::keys::NodeKey;
use jsym_net::NodeId;
use jsym_sysmon::{ParamValue, SampleCache, SysParam, SysSnapshot};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};

/// Default virtual-time TTL for cached samples (matches the default
/// monitoring period order of magnitude).
pub const DEFAULT_TTL: f64 = 2.0;

/// `f64` with a total order, usable as a heap key.
#[derive(Clone, Copy, Debug, PartialEq)]
pub(crate) struct OrdF64(pub f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Configuration of the aggregation plane.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PlaneConfig {
    /// Whether the fast path is active at all.
    pub enabled: bool,
    /// Virtual-time TTL of cached per-machine samples.
    pub ttl: f64,
    /// Relative change in any numeric parameter (vs `max(|old|, 1)`) above
    /// which a node is marked dirty for the next automigration scan. `0.0`
    /// marks on any change.
    pub dirty_threshold: f64,
}

/// Default dirty threshold: 5% relative movement. Large enough that the
/// load model's per-interval jitter (memory noise, page-fault drift) does
/// not mark idle nodes dirty every refresh, small enough that any real load
/// shift does.
pub const DEFAULT_DIRTY_THRESHOLD: f64 = 0.05;

impl Default for PlaneConfig {
    fn default() -> Self {
        PlaneConfig {
            enabled: false,
            ttl: DEFAULT_TTL,
            dirty_threshold: DEFAULT_DIRTY_THRESHOLD,
        }
    }
}

/// Point-in-time statistics of the aggregation plane.
#[derive(Clone, Copy, Debug, Default)]
pub struct PlaneStats {
    /// Whether the plane is enabled.
    pub enabled: bool,
    /// Sample TTL in virtual seconds.
    pub ttl: f64,
    /// Cache hits since the plane was created.
    pub hits: u64,
    /// Cache misses (fresh samples taken) since the plane was created.
    pub misses: u64,
    /// Explicit invalidations (failures, epoch bumps).
    pub invalidations: u64,
    /// Machines currently holding a cached sample.
    pub cached: usize,
    /// Virtual nodes queued for the next dirty-mode automigration scan.
    pub dirty: usize,
    /// Free machines currently indexed by the placement heap.
    pub heap: usize,
    /// Virtual nodes contributing to a component rollup.
    pub tracked: usize,
}

/// Result of one constraint-violation scan.
#[derive(Clone, Debug, Default)]
pub struct ViolationScan {
    /// Violating `(node, machine)` pairs in ascending node order.
    pub violations: Vec<(NodeKey, NodeId)>,
    /// Number of nodes whose constraints were actually evaluated.
    pub evaluated: usize,
}

/// Mutable state of the aggregation plane, owned by `VdaState`.
#[derive(Debug)]
pub(crate) struct AggPlane {
    /// Fast path on/off. When off, every other field is quiescent and the
    /// registry behaves exactly as before the plane existed.
    pub enabled: bool,
    /// Relative dirty-marking threshold (see [`PlaneConfig`]).
    pub dirty_threshold: f64,
    /// Per-machine sample cache (virtual-time TTL + epoch invalidation).
    pub cache: SampleCache,
    /// Virtual time of the last completed refresh sweep, if any.
    pub last_refresh: Option<f64>,
    /// Pool membership at the last refresh; a change forces a sweep even
    /// inside the TTL window.
    pub cached_ids: Vec<NodeId>,
    /// The exact snapshot each attached node currently contributes to its
    /// ancestor rollups — removed verbatim on detach, so rollups never leak.
    pub contrib: HashMap<NodeKey, SysSnapshot>,
    /// Live virtual nodes per physical machine, for dirty propagation.
    pub live_by_phys: HashMap<NodeId, Vec<NodeKey>>,
    /// Min-heap of free machines by `(CpuLoad1, NodeId)`, lazily pruned.
    pub heap: BinaryHeap<Reverse<(OrdF64, NodeId)>>,
    /// Authoritative `machine -> load` map; a heap entry is valid only if it
    /// matches this bit-exactly.
    pub heap_loads: HashMap<NodeId, f64>,
    /// Nodes whose cached sample moved past the threshold since the last
    /// scan (plus freshly allocated/re-attached nodes).
    pub dirty: HashSet<NodeKey>,
    /// Nodes found violating by the last scan; always re-evaluated so a
    /// recovery is noticed even without a sample delta.
    pub watch: HashSet<NodeKey>,
}

impl Default for AggPlane {
    fn default() -> Self {
        AggPlane {
            enabled: false,
            dirty_threshold: 0.0,
            cache: SampleCache::new(DEFAULT_TTL),
            last_refresh: None,
            cached_ids: Vec::new(),
            contrib: HashMap::new(),
            live_by_phys: HashMap::new(),
            heap: BinaryHeap::new(),
            heap_loads: HashMap::new(),
            dirty: HashSet::new(),
            watch: HashSet::new(),
        }
    }
}

impl AggPlane {
    /// Snapshot of the plane's statistics.
    pub fn stats(&self) -> PlaneStats {
        let c = self.cache.stats();
        PlaneStats {
            enabled: self.enabled,
            ttl: self.cache.ttl(),
            hits: c.hits,
            misses: c.misses,
            invalidations: c.invalidations,
            cached: c.entries,
            dirty: self.dirty.len(),
            heap: self.heap_loads.len(),
            tracked: self.contrib.len(),
        }
    }

    /// Drops every derived structure (keeping configuration and lifetime
    /// cache counters) — used on disable and before a rebuild.
    pub fn clear(&mut self) {
        self.cache.bump_epoch();
        self.last_refresh = None;
        self.cached_ids.clear();
        self.contrib.clear();
        self.live_by_phys.clear();
        self.heap.clear();
        self.heap_loads.clear();
        self.dirty.clear();
        self.watch.clear();
    }

    /// Indexes `id` as a free machine under `load`.
    pub fn heap_push(&mut self, id: NodeId, load: f64) {
        self.heap_loads.insert(id, load);
        self.heap.push(Reverse((OrdF64(load), id)));
    }
}

/// The heap key for a cached sample: smoothed 1-minute load, with missing
/// values sorting last (mirrors the slow path's `unwrap_or(f64::MAX)`).
pub(crate) fn load_of(snap: &SysSnapshot) -> f64 {
    snap.num(SysParam::CpuLoad1).unwrap_or(f64::MAX)
}

/// Whether the sample moved enough to re-evaluate its nodes' constraints.
///
/// Numeric parameters compare relatively (`|new - old| > thr * max(|old|,
/// 1)`, so MB-scale and fraction-scale parameters get comparable
/// sensitivity); any string change, or a parameter appearing/disappearing,
/// always trips it. A threshold of `0.0` trips on any change at all.
///
/// `UptimeSecs` is excluded: it grows linearly with virtual time, so it
/// would mark every node dirty on every refresh. Constraints on it are
/// still caught by the periodic full scan.
pub(crate) fn delta_exceeds(old: &SysSnapshot, new: &SysSnapshot, threshold: f64) -> bool {
    if old.len() != new.len() {
        return true;
    }
    for (param, nv) in new.iter() {
        if *param == SysParam::UptimeSecs {
            continue;
        }
        match (old.get(*param), nv) {
            (Some(ParamValue::Num(o)), ParamValue::Num(n)) => {
                if (n - o).abs() > threshold * o.abs().max(1.0) {
                    return true;
                }
            }
            (Some(ov), nv) => {
                if ov != nv {
                    return true;
                }
            }
            (None, _) => return true,
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsym_sysmon::SysParam;

    fn snap(load: f64, mem: f64, name: &str) -> SysSnapshot {
        let mut s = SysSnapshot::empty(0.0);
        s.set(SysParam::CpuLoad1, load);
        s.set(SysParam::AvailMem, mem);
        s.set(SysParam::NodeName, name);
        s
    }

    #[test]
    fn ord_f64_orders_totally() {
        let mut v = vec![OrdF64(2.0), OrdF64(f64::MAX), OrdF64(0.5), OrdF64(0.0)];
        v.sort();
        assert_eq!(v[0], OrdF64(0.0));
        assert_eq!(v[3], OrdF64(f64::MAX));
    }

    #[test]
    fn delta_is_relative_per_parameter() {
        let a = snap(0.10, 200.0, "m0");
        // 200 -> 205 MB is a 2.5% move: below a 0.25 threshold.
        let b = snap(0.10, 205.0, "m0");
        assert!(!delta_exceeds(&a, &b, 0.25));
        // Load 0.10 -> 0.90 compares against max(|old|, 1) = 1.
        let c = snap(0.90, 200.0, "m0");
        assert!(delta_exceeds(&a, &c, 0.25));
        // Zero threshold trips on any change.
        assert!(delta_exceeds(&a, &b, 0.0));
        assert!(!delta_exceeds(&a, &a.clone(), 0.0));
    }

    #[test]
    fn delta_trips_on_strings_and_shape() {
        let a = snap(0.1, 200.0, "m0");
        let renamed = snap(0.1, 200.0, "m1");
        assert!(delta_exceeds(&a, &renamed, 10.0));
        let mut fewer = a.clone();
        fewer.set(SysParam::IdlePct, 50.0);
        assert!(delta_exceeds(&a, &fewer, 10.0));
    }

    #[test]
    fn heap_pops_in_load_then_id_order() {
        let mut p = AggPlane::default();
        p.heap_push(NodeId(3), 0.5);
        p.heap_push(NodeId(1), 0.5);
        p.heap_push(NodeId(2), 0.1);
        let mut order = Vec::new();
        while let Some(Reverse((_, id))) = p.heap.pop() {
            order.push(id.0);
        }
        assert_eq!(order, vec![2, 1, 3]);
    }
}
