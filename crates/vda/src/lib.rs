//! # jsym-vda — dynamic virtual distributed architectures
//!
//! The central abstraction of JavaSymphony (paper §3, §4.2): the programmer
//! imposes a virtual hierarchy — **node ⊂ cluster ⊂ site ⊂ domain** — on the
//! physical machines registered with the runtime, optionally restricted by
//! [`JsConstraints`](jsym_sysmon::JsConstraints) over system parameters, and
//! uses the resulting components to control where objects and code live.
//!
//! * [`ResourcePool`] — the physical machines the JS-Shell configured;
//! * [`VdaRegistry`] — arena of virtual components plus allocation policy;
//! * [`Node`], [`Cluster`], [`Site`], [`Domain`] — the programmer-facing
//!   handles mirroring the paper's API (`nrNodes`, `getCluster`, `freeNode`,
//!   `addCluster`, ...);
//! * manager hierarchy with backups (paper §5.1): every component is
//!   controlled by a manager node; only a cluster manager can be a site
//!   manager and only a site manager a domain manager; when a manager node
//!   fails its backup takes over.
//!
//! Invariants maintained (and property-tested):
//!
//! 1. every live virtual node has exactly one parent chain
//!    `(cluster, site, domain)` once its implicit parents are materialized;
//! 2. managers satisfy the promotion rule above;
//! 3. a physical machine backs at most one live virtual node per registry
//!    unless it was requested *by name* (explicit sharing).

#![warn(missing_docs)]

mod error;
mod event;
mod handles;
mod keys;
mod plane;
mod pool;
mod state;

pub use error::VdaError;
pub use event::{ManagerScope, VdaEvent};
pub use handles::{Cluster, Domain, MonitorView, Node, Site, VdaRegistry};
pub use keys::{ClusterKey, DomainKey, NodeKey, SiteKey};
pub use plane::{PlaneConfig, PlaneStats, ViolationScan, DEFAULT_DIRTY_THRESHOLD};
pub use pool::ResourcePool;

/// Crate-wide result type.
pub type Result<T> = std::result::Result<T, VdaError>;
