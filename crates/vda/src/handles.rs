//! Public handles: [`VdaRegistry`], [`Node`], [`Cluster`], [`Site`],
//! [`Domain`] — the Rust counterpart of the paper's §4.2 API.

use crate::plane::{PlaneConfig, PlaneStats, ViolationScan};
use crate::state::VdaState;
use crate::{ClusterKey, DomainKey, NodeKey, ResourcePool, Result, SiteKey, VdaError, VdaEvent};
use crossbeam::channel::{Receiver, Sender};
use jsym_net::NodeId;
use jsym_obs::ObsRegistry;
use jsym_sysmon::{aggregate, JsConstraints, ParamValue, SysParam, SysSnapshot};
use parking_lot::{Mutex, RwLock};
use std::sync::Arc;

struct RegistryInner {
    pool: ResourcePool,
    state: RwLock<VdaState>,
    subscribers: Mutex<Vec<Sender<VdaEvent>>>,
    obs: ObsRegistry,
}

/// The registry of virtual distributed architectures for one deployment.
///
/// Cloning shares the registry. All component handles keep a reference back
/// to their registry, so the paper's fluent navigation
/// (`d1.getSite(1).getCluster(2).getNode(3)`) works unchanged.
#[derive(Clone)]
pub struct VdaRegistry {
    inner: Arc<RegistryInner>,
}

impl VdaRegistry {
    /// Creates a registry over a pool of physical machines.
    pub fn new(pool: ResourcePool) -> Self {
        Self::with_obs(pool, ObsRegistry::disabled())
    }

    /// Creates a registry that exports aggregation-plane metrics
    /// (`vda.sample.*`, `vda.dirty.size`) through `obs`.
    pub fn with_obs(pool: ResourcePool, obs: ObsRegistry) -> Self {
        VdaRegistry {
            inner: Arc::new(RegistryInner {
                pool,
                state: RwLock::new(VdaState::default()),
                subscribers: Mutex::new(Vec::new()),
                obs,
            }),
        }
    }

    /// The physical machine pool.
    pub fn pool(&self) -> &ResourcePool {
        &self.inner.pool
    }

    /// Subscribes to architecture events (allocation, failure, failover).
    pub fn subscribe(&self) -> Receiver<VdaEvent> {
        let (tx, rx) = crossbeam::channel::unbounded();
        self.inner.subscribers.lock().push(tx);
        rx
    }

    /// Runs `f` under the state lock, then broadcasts any events it queued
    /// and exports aggregation-plane counter deltas through obs.
    fn with_state<T>(&self, f: impl FnOnce(&mut VdaState, &ResourcePool) -> T) -> T {
        let (out, events, deltas) = {
            let mut st = self.inner.state.write();
            let before = st.plane.enabled.then(|| st.plane.cache.stats());
            let out = f(&mut st, &self.inner.pool);
            let deltas = before.map(|b| {
                let a = st.plane.cache.stats();
                (
                    a.hits - b.hits,
                    a.misses - b.misses,
                    a.invalidations - b.invalidations,
                    st.plane.dirty.len(),
                )
            });
            (out, std::mem::take(&mut st.pending_events), deltas)
        };
        if let Some((hits, misses, invalidations, dirty)) = deltas {
            let obs = &self.inner.obs;
            if hits > 0 {
                obs.counter("vda.sample.hits", None, "plane").add(hits);
            }
            if misses > 0 {
                obs.counter("vda.sample.misses", None, "plane").add(misses);
            }
            if invalidations > 0 {
                obs.counter("vda.sample.invalidations", None, "plane")
                    .add(invalidations);
            }
            obs.gauge("vda.dirty.size", None, "plane").set(dirty as f64);
        }
        if !events.is_empty() {
            let mut subs = self.inner.subscribers.lock();
            subs.retain(|tx| events.iter().all(|ev| tx.send(ev.clone()).is_ok()));
        }
        out
    }

    fn read_state<T>(&self, f: impl FnOnce(&VdaState) -> T) -> T {
        f(&self.inner.state.read())
    }

    // ----------------------------------------------------------- node requests

    /// `new Node()` — any machine, picked by the runtime (lowest load).
    pub fn request_node(&self) -> Result<Node> {
        let key = self.with_state(|st, pool| st.alloc_any(pool, None))?;
        Ok(Node {
            key,
            reg: self.clone(),
        })
    }

    /// `new Node("rachel")` — a specific machine by host name.
    pub fn request_node_named(&self, name: &str) -> Result<Node> {
        let key = self.with_state(|st, pool| st.alloc_named(pool, name))?;
        Ok(Node {
            key,
            reg: self.clone(),
        })
    }

    /// `new Node(constr)` — any machine satisfying the constraints.
    pub fn request_node_constrained(&self, constraints: &JsConstraints) -> Result<Node> {
        let key = self.with_state(|st, pool| st.alloc_any(pool, Some(constraints)))?;
        Ok(Node {
            key,
            reg: self.clone(),
        })
    }

    // -------------------------------------------------------- cluster requests

    /// `new Cluster(n [, constr])` — a cluster of `n` distinct machines.
    pub fn request_cluster(
        &self,
        n: usize,
        constraints: Option<&JsConstraints>,
    ) -> Result<Cluster> {
        let key = self.with_state(|st, pool| -> Result<ClusterKey> {
            let nodes = st.alloc_many(pool, n, constraints)?;
            let ck = st.new_cluster(constraints.cloned());
            for nk in nodes {
                st.add_node_to_cluster(ck, nk)?;
            }
            Ok(ck)
        })?;
        Ok(Cluster {
            key,
            reg: self.clone(),
        })
    }

    /// `new Cluster()` — an empty cluster to be populated with `addNode`.
    pub fn empty_cluster(&self) -> Cluster {
        let key = self.with_state(|st, _| st.new_cluster(None));
        Cluster {
            key,
            reg: self.clone(),
        }
    }

    // ----------------------------------------------------------- site requests

    /// `new Site({2,4,5} [, constr])` — clusters of the given sizes.
    pub fn request_site(
        &self,
        cluster_sizes: &[usize],
        constraints: Option<&JsConstraints>,
    ) -> Result<Site> {
        let key = self.with_state(|st, pool| -> Result<SiteKey> {
            // All-or-nothing: allocate every node up front.
            let total: usize = cluster_sizes.iter().sum();
            let mut nodes = st.alloc_many(pool, total, constraints)?.into_iter();
            let sk = st.new_site(constraints.cloned());
            for &size in cluster_sizes {
                let ck = st.new_cluster(None);
                for _ in 0..size {
                    st.add_node_to_cluster(ck, nodes.next().expect("allocated enough"))?;
                }
                st.add_cluster_to_site(sk, ck)?;
            }
            Ok(sk)
        })?;
        Ok(Site {
            key,
            reg: self.clone(),
        })
    }

    /// `new Site()` — an empty site to be populated with `addCluster`.
    pub fn empty_site(&self) -> Site {
        let key = self.with_state(|st, _| st.new_site(None));
        Site {
            key,
            reg: self.clone(),
        }
    }

    // --------------------------------------------------------- domain requests

    /// `new Domain({{1,3,5},{6,4}} [, constr])` — sites of clusters of the
    /// given sizes.
    pub fn request_domain(
        &self,
        site_shapes: &[&[usize]],
        constraints: Option<&JsConstraints>,
    ) -> Result<Domain> {
        let key = self.with_state(|st, pool| -> Result<DomainKey> {
            let total: usize = site_shapes.iter().map(|s| s.iter().sum::<usize>()).sum();
            let mut nodes = st.alloc_many(pool, total, constraints)?.into_iter();
            let dk = st.new_domain(constraints.cloned());
            for &shape in site_shapes {
                let sk = st.new_site(None);
                for &size in shape {
                    let ck = st.new_cluster(None);
                    for _ in 0..size {
                        st.add_node_to_cluster(ck, nodes.next().expect("allocated enough"))?;
                    }
                    st.add_cluster_to_site(sk, ck)?;
                }
                st.add_site_to_domain(dk, sk)?;
            }
            Ok(dk)
        })?;
        Ok(Domain {
            key,
            reg: self.clone(),
        })
    }

    /// `new Domain()` — an empty domain to be populated with `addSite`.
    pub fn empty_domain(&self) -> Domain {
        let key = self.with_state(|st, _| st.new_domain(None));
        Domain {
            key,
            reg: self.clone(),
        }
    }

    // ---------------------------------------------------------------- failure

    /// Declares a physical machine failed (consumed by the runtime's failure
    /// detector): managers fail over, virtual nodes on it are released.
    pub fn handle_phys_failure(&self, phys: NodeId) {
        self.with_state(|st, _| st.handle_phys_failure(phys));
    }

    /// Whether a machine has been declared failed.
    pub fn is_failed(&self, phys: NodeId) -> bool {
        self.read_state(|st| st.failed.contains(&phys))
    }

    /// How many live virtual nodes the machine currently backs.
    pub fn allocation_count(&self, phys: NodeId) -> usize {
        self.read_state(|st| st.allocated.get(&phys).copied().unwrap_or(0))
    }

    // ------------------------------------------------------ aggregation plane

    /// Applies an aggregation-plane configuration (see [`PlaneConfig`]).
    /// Enabling mid-flight rebuilds the cache, rollups and placement index
    /// from the pool; disabling reverts every query to the slow path.
    pub fn set_plane_config(&self, cfg: PlaneConfig) {
        self.with_state(|st, pool| st.set_plane_config(pool, cfg));
    }

    /// The current aggregation-plane configuration.
    pub fn plane_config(&self) -> PlaneConfig {
        self.read_state(|st| st.plane_config())
    }

    /// Point-in-time statistics of the aggregation plane (cache hit/miss
    /// counts, dirty-set size, placement-index size).
    pub fn plane_stats(&self) -> PlaneStats {
        self.read_state(|st| st.plane.stats())
    }

    /// Re-targets the sample TTL (the JS-Shell ties it to the monitoring
    /// period) without touching enablement or cached structures.
    pub fn set_plane_ttl(&self, ttl: f64) {
        self.with_state(|st, _| {
            st.plane.cache.set_ttl(ttl);
            st.plane.last_refresh = None;
        });
    }

    /// Scans for constraint violations. `dirty_only` restricts the scan to
    /// nodes whose cached sample moved past the configured threshold (plus
    /// the nodes already violating) — the event-driven automigrate round.
    /// Falls back to a full scan when the plane is disabled.
    pub fn scan_violations(&self, dirty_only: bool) -> ViolationScan {
        self.with_state(|st, pool| st.scan_violations(pool, dirty_only))
    }

    // ---------------------------------------------------------------- queries

    /// Live virtual nodes whose effective constraints no longer hold,
    /// with the machine backing them. Drives automatic migration.
    /// Always evaluates every constrained node against a fresh sample.
    pub fn violating_nodes(&self) -> Vec<(NodeKey, NodeId)> {
        self.scan_violations(false).violations
    }

    /// Locality-ordered migration candidates for the node: machines in the
    /// same cluster first, then same site, then same domain.
    pub fn locality_candidates(&self, node: &Node) -> Vec<NodeId> {
        self.read_state(|st| st.locality_candidates(node.key))
    }

    /// The conjunction of the node's own creation constraints and those of
    /// every enclosing component.
    pub fn effective_constraints(&self, node: &Node) -> JsConstraints {
        self.read_state(|st| st.effective_constraints(node.key))
    }

    /// A handle for an existing virtual node key (used by the runtime).
    pub fn node_handle(&self, key: NodeKey) -> Node {
        Node {
            key,
            reg: self.clone(),
        }
    }

    /// Computes the monitoring relationships of a physical machine across all
    /// live architectures: whom it reports to, whom it expects heartbeats
    /// from, and which component member-sets it aggregates as a manager
    /// (paper §5.1 — nodes report to cluster managers, cluster managers to
    /// site managers, site managers to domain managers; managers examine the
    /// managers of the next lower and higher level for failures).
    pub fn monitor_view(&self, phys: NodeId) -> MonitorView {
        self.read_state(|st| {
            let mut view = MonitorView::default();
            let phys_of = |st: &crate::state::VdaState, nk: NodeKey| st.node(nk).phys;

            for (ci, cl) in st.clusters.iter().enumerate() {
                if cl.freed || cl.nodes.is_empty() {
                    continue;
                }
                let ck = ClusterKey(ci as u32);
                let Some(mgr) = cl.manager else { continue };
                let mgr_phys = phys_of(st, mgr);
                let members: Vec<NodeId> = cl.nodes.iter().map(|&nk| phys_of(st, nk)).collect();
                let i_am_member = members.contains(&phys);
                let i_am_mgr = mgr_phys == phys;
                if i_am_member && !i_am_mgr {
                    view.report_to.push(mgr_phys);
                    view.expects_from.push(mgr_phys);
                }
                if i_am_mgr {
                    for &m in &members {
                        if m != phys {
                            view.expects_from.push(m);
                        }
                    }
                    view.aggregates.push((format!("{ck}"), members.clone()));
                    // Forward cluster aggregate to the site manager.
                    if let Some(sk) = cl.parent {
                        if let Some(sm) = st.site(sk).manager {
                            let sm_phys = phys_of(st, sm);
                            if sm_phys != phys {
                                view.report_to.push(sm_phys);
                                view.expects_from.push(sm_phys);
                            }
                        }
                    }
                }
            }
            for (si, site) in st.sites.iter().enumerate() {
                if site.freed || site.clusters.is_empty() {
                    continue;
                }
                let sk = SiteKey(si as u32);
                let Some(mgr) = site.manager else { continue };
                if phys_of(st, mgr) != phys {
                    continue;
                }
                // I manage this site: expect from its cluster managers,
                // aggregate its machines, forward to the domain manager.
                for &ck in &site.clusters {
                    if let Some(cm) = st.cluster(ck).manager {
                        let cm_phys = phys_of(st, cm);
                        if cm_phys != phys {
                            view.expects_from.push(cm_phys);
                        }
                    }
                }
                view.aggregates
                    .push((format!("{sk}"), st.site_machines(sk)));
                if let Some(dk) = site.parent {
                    if let Some(dm) = st.domain(dk).manager {
                        let dm_phys = phys_of(st, dm);
                        if dm_phys != phys {
                            view.report_to.push(dm_phys);
                            view.expects_from.push(dm_phys);
                        }
                    }
                }
            }
            for (di, dom) in st.domains.iter().enumerate() {
                if dom.freed || dom.sites.is_empty() {
                    continue;
                }
                let dk = DomainKey(di as u32);
                let Some(mgr) = dom.manager else { continue };
                if phys_of(st, mgr) != phys {
                    continue;
                }
                for &sk in &dom.sites {
                    if let Some(sm) = st.site(sk).manager {
                        let sm_phys = phys_of(st, sm);
                        if sm_phys != phys {
                            view.expects_from.push(sm_phys);
                        }
                    }
                }
                view.aggregates
                    .push((format!("{dk}"), st.domain_machines(dk)));
            }
            view.dedup();
            view
        })
    }

    fn component_snapshot(&self, machines: &[NodeId]) -> Result<SysSnapshot> {
        let mut snaps = Vec::with_capacity(machines.len());
        for &id in machines {
            snaps.push(self.inner.pool.snapshot_of(id)?);
        }
        Ok(aggregate::average(&snaps))
    }
}

/// The monitoring relationships of one machine, derived from the live
/// virtual architectures (see [`VdaRegistry::monitor_view`]).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MonitorView {
    /// Machines this node sends its reports/heartbeats to.
    pub report_to: Vec<NodeId>,
    /// Machines this node expects periodic traffic from (for failure
    /// detection).
    pub expects_from: Vec<NodeId>,
    /// Component member-sets this node aggregates as a manager, labeled by
    /// component key.
    pub aggregates: Vec<(String, Vec<NodeId>)>,
}

impl MonitorView {
    fn dedup(&mut self) {
        self.report_to.sort();
        self.report_to.dedup();
        self.expects_from.sort();
        self.expects_from.dedup();
    }

    /// Whether this node has any monitoring relationships at all.
    pub fn is_empty(&self) -> bool {
        self.report_to.is_empty() && self.expects_from.is_empty() && self.aggregates.is_empty()
    }
}

impl std::fmt::Debug for VdaRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.read_state(|st| {
            f.debug_struct("VdaRegistry")
                .field("nodes", &st.nodes.len())
                .field("clusters", &st.clusters.len())
                .field("sites", &st.sites.len())
                .field("domains", &st.domains.len())
                .finish()
        })
    }
}

// ===================================================================== Node

/// A virtual node — one allocated machine inside an architecture.
#[derive(Clone)]
pub struct Node {
    key: NodeKey,
    reg: VdaRegistry,
}

impl Node {
    /// This node's arena key.
    pub fn key(&self) -> NodeKey {
        self.key
    }

    /// The physical machine backing this node.
    pub fn phys(&self) -> NodeId {
        self.reg.read_state(|st| st.node(self.key).phys)
    }

    /// Host name of the backing machine.
    pub fn name(&self) -> Result<String> {
        Ok(self.reg.pool().machine(self.phys())?.spec().name.clone())
    }

    /// Whether the node is still allocated.
    pub fn is_live(&self) -> bool {
        self.reg.read_state(|st| !st.node(self.key).freed)
    }

    /// `getCluster()` — the (possibly implicit) cluster of this node.
    pub fn get_cluster(&self) -> Result<Cluster> {
        // Repeat lookups only take the read lock; the write lock is needed
        // once, to materialize the implicit cluster.
        if let Some(key) = self.reg.read_state(|st| st.cluster_of_node_ref(self.key))? {
            return Ok(Cluster {
                key,
                reg: self.reg.clone(),
            });
        }
        let key = self.reg.with_state(|st, _| st.cluster_of_node(self.key))?;
        Ok(Cluster {
            key,
            reg: self.reg.clone(),
        })
    }

    /// `getSite()` — the (possibly implicit) site of this node.
    pub fn get_site(&self) -> Result<Site> {
        self.get_cluster()?.get_site()
    }

    /// `getDomain()` — the (possibly implicit) domain of this node.
    pub fn get_domain(&self) -> Result<Domain> {
        self.get_site()?.get_domain()
    }

    /// `freeNode()` — releases the node from the application.
    pub fn free(&self) -> Result<()> {
        self.reg.with_state(|st, _| st.free_node(self.key))
    }

    /// Current snapshot of the backing machine.
    pub fn snapshot(&self) -> Result<SysSnapshot> {
        self.reg.pool().snapshot_of(self.phys())
    }

    /// `getSysParam(param)` — one system parameter of this node (§4.6).
    pub fn get_sys_param(&self, param: SysParam) -> Result<ParamValue> {
        self.snapshot()?
            .get(param)
            .cloned()
            .ok_or(VdaError::Empty("parameter"))
    }

    /// `constrHold(constr)` — whether the constraints currently hold here.
    pub fn constr_hold(&self, constraints: &JsConstraints) -> Result<bool> {
        Ok(constraints.holds(&self.snapshot()?))
    }
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && Arc::ptr_eq(&self.reg.inner, &other.reg.inner)
    }
}
impl Eq for Node {}

impl std::fmt::Debug for Node {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Node({} on {})", self.key, self.phys())
    }
}

// ================================================================== Cluster

/// A cluster — an ordered collection of nodes (paper §4.2).
#[derive(Clone)]
pub struct Cluster {
    key: ClusterKey,
    reg: VdaRegistry,
}

impl Cluster {
    /// This cluster's arena key.
    pub fn key(&self) -> ClusterKey {
        self.key
    }

    /// `nrNodes()` — current number of nodes in the cluster.
    pub fn nr_nodes(&self) -> usize {
        self.reg.read_state(|st| st.cluster(self.key).nodes.len())
    }

    /// `getNode(i)` — the `i`-th node (0-based, as in the paper).
    pub fn get_node(&self, index: usize) -> Result<Node> {
        let key = self.reg.read_state(|st| {
            st.cluster(self.key)
                .nodes
                .get(index)
                .copied()
                .ok_or(VdaError::IndexOutOfRange {
                    what: "node",
                    index,
                    len: st.cluster(self.key).nodes.len(),
                })
        })?;
        Ok(Node {
            key,
            reg: self.reg.clone(),
        })
    }

    /// `addNode(n)` — adds an existing node to this cluster.
    pub fn add_node(&self, node: &Node) -> Result<()> {
        self.reg
            .with_state(|st, _| st.add_node_to_cluster(self.key, node.key))
    }

    /// `freeNode(i)` — releases the `i`-th node.
    pub fn free_node_at(&self, index: usize) -> Result<()> {
        let node = self.get_node(index)?;
        node.free()
    }

    /// `freeNode(n)` — releases a member node.
    pub fn free_node(&self, node: &Node) -> Result<()> {
        let is_member = self
            .reg
            .read_state(|st| st.cluster(self.key).nodes.contains(&node.key));
        if !is_member {
            return Err(VdaError::NotAMember);
        }
        node.free()
    }

    /// `getSite()` — the (possibly implicit) site of this cluster.
    pub fn get_site(&self) -> Result<Site> {
        if let Some(key) = self.reg.read_state(|st| st.site_of_cluster_ref(self.key))? {
            return Ok(Site {
                key,
                reg: self.reg.clone(),
            });
        }
        let key = self.reg.with_state(|st, _| st.site_of_cluster(self.key))?;
        Ok(Site {
            key,
            reg: self.reg.clone(),
        })
    }

    /// `getDomain()` — the (possibly implicit) domain of this cluster.
    pub fn get_domain(&self) -> Result<Domain> {
        self.get_site()?.get_domain()
    }

    /// `freeCluster()` — releases the cluster and all its nodes.
    pub fn free(&self) -> Result<()> {
        self.reg.with_state(|st, _| st.free_cluster(self.key))
    }

    /// Whether the cluster is still allocated.
    pub fn is_live(&self) -> bool {
        self.reg.read_state(|st| !st.cluster(self.key).freed)
    }

    /// The cluster manager (a node of the cluster, §5.1).
    pub fn manager(&self) -> Option<Node> {
        self.reg
            .read_state(|st| st.cluster(self.key).manager)
            .map(|key| Node {
                key,
                reg: self.reg.clone(),
            })
    }

    /// The pre-designated backup manager.
    pub fn backup_manager(&self) -> Option<Node> {
        self.reg
            .read_state(|st| st.cluster(self.key).backup)
            .map(|key| Node {
                key,
                reg: self.reg.clone(),
            })
    }

    /// Averaged snapshot over the cluster's machines (§4.6: "System
    /// parameters for clusters, sites, and domains are averaged across the
    /// contained nodes"). Served from the incremental rollup when the
    /// aggregation plane is enabled.
    pub fn snapshot(&self) -> Result<SysSnapshot> {
        if self.reg.read_state(|st| st.plane_config().enabled) {
            return Ok(self.reg.with_state(|st, pool| {
                st.plane_refresh(pool);
                st.cluster(self.key).rollup.to_snapshot()
            }));
        }
        self.snapshot_uncached()
    }

    /// Averaged snapshot recomputed from fresh per-machine samples,
    /// bypassing the aggregation plane.
    pub fn snapshot_uncached(&self) -> Result<SysSnapshot> {
        let machines = self.reg.read_state(|st| st.cluster_machines(self.key));
        self.reg.component_snapshot(&machines)
    }

    /// `getSysParam(param)` — averaged over the cluster.
    pub fn get_sys_param(&self, param: SysParam) -> Result<ParamValue> {
        self.snapshot()?
            .get(param)
            .cloned()
            .ok_or(VdaError::Empty("parameter"))
    }

    /// `constrHold(constr)` — against the averaged snapshot.
    pub fn constr_hold(&self, constraints: &JsConstraints) -> Result<bool> {
        Ok(constraints.holds(&self.snapshot()?))
    }

    /// Physical machines currently backing this cluster's nodes.
    pub fn machines(&self) -> Vec<NodeId> {
        self.reg.read_state(|st| st.cluster_machines(self.key))
    }
}

impl PartialEq for Cluster {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && Arc::ptr_eq(&self.reg.inner, &other.reg.inner)
    }
}
impl Eq for Cluster {}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Cluster({}, {} nodes)", self.key, self.nr_nodes())
    }
}

// ===================================================================== Site

/// A site — a collection of clusters, typically one geographic location.
#[derive(Clone)]
pub struct Site {
    key: SiteKey,
    reg: VdaRegistry,
}

impl Site {
    /// This site's arena key.
    pub fn key(&self) -> SiteKey {
        self.key
    }

    /// `nrClusters()` — current number of clusters.
    pub fn nr_clusters(&self) -> usize {
        self.reg.read_state(|st| st.site(self.key).clusters.len())
    }

    /// `nrNodes()` — nodes across all clusters.
    pub fn nr_nodes(&self) -> usize {
        self.reg.read_state(|st| {
            st.site(self.key)
                .clusters
                .iter()
                .map(|&ck| st.cluster(ck).nodes.len())
                .sum()
        })
    }

    /// `getCluster(i)` — the `i`-th cluster (0-based).
    pub fn get_cluster(&self, index: usize) -> Result<Cluster> {
        let key = self.reg.read_state(|st| {
            st.site(self.key)
                .clusters
                .get(index)
                .copied()
                .ok_or(VdaError::IndexOutOfRange {
                    what: "cluster",
                    index,
                    len: st.site(self.key).clusters.len(),
                })
        })?;
        Ok(Cluster {
            key,
            reg: self.reg.clone(),
        })
    }

    /// `getNode(c, n)` — node `n` of cluster `c`.
    pub fn get_node(&self, cluster: usize, node: usize) -> Result<Node> {
        self.get_cluster(cluster)?.get_node(node)
    }

    /// `addCluster(c)` — adds an existing cluster to this site.
    pub fn add_cluster(&self, cluster: &Cluster) -> Result<()> {
        self.reg
            .with_state(|st, _| st.add_cluster_to_site(self.key, cluster.key))
    }

    /// `freeNode(c, n)` — releases node `n` of cluster `c`.
    pub fn free_node(&self, cluster: usize, node: usize) -> Result<()> {
        self.get_cluster(cluster)?.free_node_at(node)
    }

    /// `freeCluster(i)` — releases the `i`-th cluster.
    pub fn free_cluster_at(&self, index: usize) -> Result<()> {
        self.get_cluster(index)?.free()
    }

    /// `freeCluster(c)` — releases a member cluster.
    pub fn free_cluster(&self, cluster: &Cluster) -> Result<()> {
        let is_member = self
            .reg
            .read_state(|st| st.site(self.key).clusters.contains(&cluster.key));
        if !is_member {
            return Err(VdaError::NotAMember);
        }
        cluster.free()
    }

    /// `getDomain()` — the (possibly implicit) domain of this site.
    pub fn get_domain(&self) -> Result<Domain> {
        if let Some(key) = self.reg.read_state(|st| st.domain_of_site_ref(self.key))? {
            return Ok(Domain {
                key,
                reg: self.reg.clone(),
            });
        }
        let key = self.reg.with_state(|st, _| st.domain_of_site(self.key))?;
        Ok(Domain {
            key,
            reg: self.reg.clone(),
        })
    }

    /// `freeSite()` — releases the site, its clusters and their nodes.
    pub fn free(&self) -> Result<()> {
        self.reg.with_state(|st, _| st.free_site(self.key))
    }

    /// Whether the site is still allocated.
    pub fn is_live(&self) -> bool {
        self.reg.read_state(|st| !st.site(self.key).freed)
    }

    /// The site manager (always one of its cluster managers, §5.1).
    pub fn manager(&self) -> Option<Node> {
        self.reg
            .read_state(|st| st.site(self.key).manager)
            .map(|key| Node {
                key,
                reg: self.reg.clone(),
            })
    }

    /// The pre-designated backup site manager (another cluster manager).
    pub fn backup_manager(&self) -> Option<Node> {
        self.reg
            .read_state(|st| st.site(self.key).backup)
            .map(|key| Node {
                key,
                reg: self.reg.clone(),
            })
    }

    /// Averaged snapshot over all the site's machines. Served from the
    /// incremental rollup when the aggregation plane is enabled.
    pub fn snapshot(&self) -> Result<SysSnapshot> {
        if self.reg.read_state(|st| st.plane_config().enabled) {
            return Ok(self.reg.with_state(|st, pool| {
                st.plane_refresh(pool);
                st.site(self.key).rollup.to_snapshot()
            }));
        }
        self.snapshot_uncached()
    }

    /// Averaged snapshot recomputed from fresh per-machine samples.
    pub fn snapshot_uncached(&self) -> Result<SysSnapshot> {
        let machines = self.reg.read_state(|st| st.site_machines(self.key));
        self.reg.component_snapshot(&machines)
    }

    /// `getSysParam(param)` — averaged over the site.
    pub fn get_sys_param(&self, param: SysParam) -> Result<ParamValue> {
        self.snapshot()?
            .get(param)
            .cloned()
            .ok_or(VdaError::Empty("parameter"))
    }

    /// `constrHold(constr)` — against the averaged snapshot.
    pub fn constr_hold(&self, constraints: &JsConstraints) -> Result<bool> {
        Ok(constraints.holds(&self.snapshot()?))
    }

    /// Physical machines currently backing this site.
    pub fn machines(&self) -> Vec<NodeId> {
        self.reg.read_state(|st| st.site_machines(self.key))
    }
}

impl PartialEq for Site {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && Arc::ptr_eq(&self.reg.inner, &other.reg.inner)
    }
}
impl Eq for Site {}

impl std::fmt::Debug for Site {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Site({}, {} clusters)", self.key, self.nr_clusters())
    }
}

// =================================================================== Domain

/// A domain — a collection of sites; the root of a virtual architecture.
#[derive(Clone)]
pub struct Domain {
    key: DomainKey,
    reg: VdaRegistry,
}

impl Domain {
    /// This domain's arena key.
    pub fn key(&self) -> DomainKey {
        self.key
    }

    /// `nrSites()` — current number of sites.
    pub fn nr_sites(&self) -> usize {
        self.reg.read_state(|st| st.domain(self.key).sites.len())
    }

    /// `nrClusters()` — clusters across all sites.
    pub fn nr_clusters(&self) -> usize {
        self.reg.read_state(|st| {
            st.domain(self.key)
                .sites
                .iter()
                .map(|&sk| st.site(sk).clusters.len())
                .sum()
        })
    }

    /// `nrNodes()` — nodes across all sites and clusters.
    pub fn nr_nodes(&self) -> usize {
        self.reg.read_state(|st| st.domain_machines(self.key).len())
    }

    /// `getSite(i)` — the `i`-th site (0-based).
    pub fn get_site(&self, index: usize) -> Result<Site> {
        let key = self.reg.read_state(|st| {
            st.domain(self.key)
                .sites
                .get(index)
                .copied()
                .ok_or(VdaError::IndexOutOfRange {
                    what: "site",
                    index,
                    len: st.domain(self.key).sites.len(),
                })
        })?;
        Ok(Site {
            key,
            reg: self.reg.clone(),
        })
    }

    /// `getNode(s, c, n)` — node `n` of cluster `c` of site `s`.
    pub fn get_node(&self, site: usize, cluster: usize, node: usize) -> Result<Node> {
        self.get_site(site)?.get_node(cluster, node)
    }

    /// `addSite(s)` — adds an existing site to this domain.
    pub fn add_site(&self, site: &Site) -> Result<()> {
        self.reg
            .with_state(|st, _| st.add_site_to_domain(self.key, site.key))
    }

    /// `freeNode(s, c, n)` — releases node `n` of cluster `c` of site `s`.
    pub fn free_node(&self, site: usize, cluster: usize, node: usize) -> Result<()> {
        self.get_site(site)?.free_node(cluster, node)
    }

    /// `freeCluster(s, c)` — releases cluster `c` of site `s`.
    pub fn free_cluster(&self, site: usize, cluster: usize) -> Result<()> {
        self.get_site(site)?.free_cluster_at(cluster)
    }

    /// `freeSite(i)` — releases the `i`-th site.
    pub fn free_site_at(&self, index: usize) -> Result<()> {
        self.get_site(index)?.free()
    }

    /// `freeSite(s)` — releases a member site.
    pub fn free_site(&self, site: &Site) -> Result<()> {
        let is_member = self
            .reg
            .read_state(|st| st.domain(self.key).sites.contains(&site.key));
        if !is_member {
            return Err(VdaError::NotAMember);
        }
        site.free()
    }

    /// `freeDomain()` — releases the whole architecture.
    pub fn free(&self) -> Result<()> {
        self.reg.with_state(|st, _| st.free_domain(self.key))
    }

    /// Whether the domain is still allocated.
    pub fn is_live(&self) -> bool {
        self.reg.read_state(|st| !st.domain(self.key).freed)
    }

    /// The domain manager (always one of its site managers, §5.1).
    pub fn manager(&self) -> Option<Node> {
        self.reg
            .read_state(|st| st.domain(self.key).manager)
            .map(|key| Node {
                key,
                reg: self.reg.clone(),
            })
    }

    /// The pre-designated backup domain manager (another site manager).
    pub fn backup_manager(&self) -> Option<Node> {
        self.reg
            .read_state(|st| st.domain(self.key).backup)
            .map(|key| Node {
                key,
                reg: self.reg.clone(),
            })
    }

    /// Averaged snapshot over all the domain's machines. Served from the
    /// incremental rollup when the aggregation plane is enabled.
    pub fn snapshot(&self) -> Result<SysSnapshot> {
        if self.reg.read_state(|st| st.plane_config().enabled) {
            return Ok(self.reg.with_state(|st, pool| {
                st.plane_refresh(pool);
                st.domain(self.key).rollup.to_snapshot()
            }));
        }
        self.snapshot_uncached()
    }

    /// Averaged snapshot recomputed from fresh per-machine samples.
    pub fn snapshot_uncached(&self) -> Result<SysSnapshot> {
        let machines = self.reg.read_state(|st| st.domain_machines(self.key));
        self.reg.component_snapshot(&machines)
    }

    /// `getSysParam(param)` — averaged over the domain.
    pub fn get_sys_param(&self, param: SysParam) -> Result<ParamValue> {
        self.snapshot()?
            .get(param)
            .cloned()
            .ok_or(VdaError::Empty("parameter"))
    }

    /// `constrHold(constr)` — against the averaged snapshot.
    pub fn constr_hold(&self, constraints: &JsConstraints) -> Result<bool> {
        Ok(constraints.holds(&self.snapshot()?))
    }

    /// Physical machines currently backing this domain.
    pub fn machines(&self) -> Vec<NodeId> {
        self.reg.read_state(|st| st.domain_machines(self.key))
    }
}

impl PartialEq for Domain {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && Arc::ptr_eq(&self.reg.inner, &other.reg.inner)
    }
}
impl Eq for Domain {}

impl std::fmt::Debug for Domain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Domain({}, {} sites)", self.key, self.nr_sites())
    }
}
