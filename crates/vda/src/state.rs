//! Internal arena state and the operations that maintain the architecture
//! invariants (membership, allocation, managers, failure handling).
//!
//! All structural reasoning lives here behind a single lock; the public
//! handles in [`crate::handles`] are thin wrappers.

use crate::event::{ManagerScope, VdaEvent};
use crate::plane::{self, AggPlane, OrdF64, PlaneConfig, ViolationScan};
use crate::{ClusterKey, DomainKey, NodeKey, ResourcePool, Result, SiteKey, VdaError};
use jsym_net::NodeId;
use jsym_sysmon::{JsConstraints, ParamRollup, SysParam, SysSnapshot};
use std::cmp::Reverse;
use std::collections::{HashMap, HashSet};

#[derive(Debug)]
pub(crate) struct NodeEntry {
    pub phys: NodeId,
    pub parent: Option<ClusterKey>,
    pub freed: bool,
    pub constraints: Option<JsConstraints>,
    /// Requested by machine name — such nodes may share a machine with
    /// other virtual nodes. Recorded for diagnostics; allocation reads the
    /// refcount in `VdaState::allocated` instead.
    #[allow(dead_code)]
    pub named: bool,
}

#[derive(Debug)]
pub(crate) struct ClusterEntry {
    pub nodes: Vec<NodeKey>,
    pub parent: Option<SiteKey>,
    pub freed: bool,
    pub constraints: Option<JsConstraints>,
    pub manager: Option<NodeKey>,
    pub backup: Option<NodeKey>,
    /// Incremental parameter aggregate over member nodes (plane fast path).
    pub rollup: ParamRollup,
}

#[derive(Debug)]
pub(crate) struct SiteEntry {
    pub clusters: Vec<ClusterKey>,
    pub parent: Option<DomainKey>,
    pub freed: bool,
    pub constraints: Option<JsConstraints>,
    /// Invariant: a site manager is the manager of one of its clusters.
    pub manager: Option<NodeKey>,
    pub backup: Option<NodeKey>,
    /// Incremental parameter aggregate over all contained nodes.
    pub rollup: ParamRollup,
}

#[derive(Debug)]
pub(crate) struct DomainEntry {
    pub sites: Vec<SiteKey>,
    pub freed: bool,
    pub constraints: Option<JsConstraints>,
    /// Invariant: a domain manager is the manager of one of its sites.
    pub manager: Option<NodeKey>,
    pub backup: Option<NodeKey>,
    /// Incremental parameter aggregate over all contained nodes.
    pub rollup: ParamRollup,
}

#[derive(Default)]
pub(crate) struct VdaState {
    pub nodes: Vec<NodeEntry>,
    pub clusters: Vec<ClusterEntry>,
    pub sites: Vec<SiteEntry>,
    pub domains: Vec<DomainEntry>,
    /// Live virtual nodes per physical machine.
    pub allocated: HashMap<NodeId, usize>,
    /// Machines declared failed.
    pub failed: HashSet<NodeId>,
    /// Events produced by the current operation, drained by the registry.
    pub pending_events: Vec<VdaEvent>,
    /// The parameter aggregation plane (disabled by default).
    pub plane: AggPlane,
}

impl VdaState {
    // ---------------------------------------------------------------- access

    pub fn node(&self, k: NodeKey) -> &NodeEntry {
        &self.nodes[k.index()]
    }
    pub fn node_mut(&mut self, k: NodeKey) -> &mut NodeEntry {
        &mut self.nodes[k.index()]
    }
    pub fn cluster(&self, k: ClusterKey) -> &ClusterEntry {
        &self.clusters[k.index()]
    }
    pub fn cluster_mut(&mut self, k: ClusterKey) -> &mut ClusterEntry {
        &mut self.clusters[k.index()]
    }
    pub fn site(&self, k: SiteKey) -> &SiteEntry {
        &self.sites[k.index()]
    }
    pub fn site_mut(&mut self, k: SiteKey) -> &mut SiteEntry {
        &mut self.sites[k.index()]
    }
    pub fn domain(&self, k: DomainKey) -> &DomainEntry {
        &self.domains[k.index()]
    }
    pub fn domain_mut(&mut self, k: DomainKey) -> &mut DomainEntry {
        &mut self.domains[k.index()]
    }

    fn emit(&mut self, ev: VdaEvent) {
        self.pending_events.push(ev);
    }

    // ------------------------------------------------------------ allocation

    /// Machines not backing any live virtual node and not failed.
    fn free_machines(&self, pool: &ResourcePool) -> Vec<NodeId> {
        pool.ids()
            .into_iter()
            .filter(|id| {
                !self.failed.contains(id) && self.allocated.get(id).copied().unwrap_or(0) == 0
            })
            .collect()
    }

    fn insert_node(
        &mut self,
        phys: NodeId,
        constraints: Option<JsConstraints>,
        named: bool,
    ) -> NodeKey {
        let key = NodeKey(self.nodes.len() as u32);
        self.nodes.push(NodeEntry {
            phys,
            parent: None,
            freed: false,
            constraints,
            named,
        });
        *self.allocated.entry(phys).or_insert(0) += 1;
        if self.plane.enabled {
            // The machine is no longer free; the node is evaluated on the
            // next dirty scan.
            self.plane.heap_loads.remove(&phys);
            self.plane.live_by_phys.entry(phys).or_default().push(key);
            self.plane.dirty.insert(key);
        }
        self.emit(VdaEvent::NodeAllocated { node: key, phys });
        key
    }

    /// Allocates one machine, preferring the least loaded candidate that
    /// satisfies `constraints` ("JRS will allocate a node with low system
    /// load and reasonable resources available", §4.2).
    pub fn alloc_any(
        &mut self,
        pool: &ResourcePool,
        constraints: Option<&JsConstraints>,
    ) -> Result<NodeKey> {
        if self.plane.enabled {
            return self.alloc_any_fast(pool, constraints);
        }
        let candidates = self.free_machines(pool);
        if candidates.is_empty() {
            return Err(VdaError::InsufficientNodes {
                requested: 1,
                available: 0,
            });
        }
        let mut best: Option<(f64, NodeId)> = None;
        for id in candidates {
            let snap = pool.snapshot_of(id)?;
            if let Some(c) = constraints {
                if !c.holds(&snap) {
                    continue;
                }
            }
            // Rank by 1-minute load average; lower is better.
            let load = snap.num(SysParam::CpuLoad1).unwrap_or(f64::MAX);
            if best.is_none_or(|(b, _)| load < b) {
                best = Some((load, id));
            }
        }
        match best {
            Some((_, id)) => Ok(self.insert_node(id, constraints.cloned(), false)),
            None => Err(VdaError::ConstraintsUnsatisfied),
        }
    }

    /// Allocates the machine with a specific host name. Named requests are
    /// always honored while the machine is alive, even if it already backs
    /// another virtual node (explicit sharing).
    pub fn alloc_named(&mut self, pool: &ResourcePool, name: &str) -> Result<NodeKey> {
        // Keep the plane's invariant that every machine backing a live node
        // has a cached sample.
        self.plane_refresh(pool);
        let (id, _) = pool.by_name(name)?;
        if self.failed.contains(&id) {
            return Err(VdaError::UnknownPhysicalNode(id));
        }
        Ok(self.insert_node(id, None, true))
    }

    /// Allocates `n` distinct machines, all satisfying `constraints`;
    /// all-or-nothing.
    pub fn alloc_many(
        &mut self,
        pool: &ResourcePool,
        n: usize,
        constraints: Option<&JsConstraints>,
    ) -> Result<Vec<NodeKey>> {
        if self.plane.enabled {
            return self.alloc_many_fast(pool, n, constraints);
        }
        let mut ranked: Vec<(f64, NodeId)> = Vec::new();
        let candidates = self.free_machines(pool);
        for id in &candidates {
            let snap = pool.snapshot_of(*id)?;
            if let Some(c) = constraints {
                if !c.holds(&snap) {
                    continue;
                }
            }
            ranked.push((snap.num(SysParam::CpuLoad1).unwrap_or(f64::MAX), *id));
        }
        if ranked.len() < n {
            return if constraints.is_some() && candidates.len() >= n {
                Err(VdaError::ConstraintsUnsatisfied)
            } else {
                Err(VdaError::InsufficientNodes {
                    requested: n,
                    available: ranked.len(),
                })
            };
        }
        ranked.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        Ok(ranked
            .into_iter()
            .take(n)
            .map(|(_, id)| self.insert_node(id, constraints.cloned(), false))
            .collect())
    }

    // ------------------------------------------------- indexed allocation

    /// Pops the next valid free machine off the placement heap, or `None`
    /// when the heap is exhausted. Stale entries (superseded load, machine
    /// no longer free) are discarded lazily.
    fn pop_free(&mut self) -> Option<(f64, NodeId)> {
        while let Some(Reverse((OrdF64(load), id))) = self.plane.heap.pop() {
            if self.plane.heap_loads.get(&id) != Some(&load) {
                continue; // superseded by a newer load for this machine
            }
            let free =
                !self.failed.contains(&id) && self.allocated.get(&id).copied().unwrap_or(0) == 0;
            if !free {
                self.plane.heap_loads.remove(&id);
                continue;
            }
            return Some((load, id));
        }
        None
    }

    /// Heap-indexed `alloc_any`: pops candidates in exactly the `(load, id)`
    /// order the slow path would rank them, so both paths pick the same
    /// machine given the same samples.
    fn alloc_any_fast(
        &mut self,
        pool: &ResourcePool,
        constraints: Option<&JsConstraints>,
    ) -> Result<NodeKey> {
        self.plane_refresh(pool);
        // Judge cache validity at the refresh watermark, not a later clock
        // read: at steep time scales the TTL can lapse mid-operation.
        let now = self.plane.last_refresh.unwrap_or_else(|| pool.now());
        let compiled = constraints.map(|c| c.compile());
        let mut rejected: Vec<(f64, NodeId)> = Vec::new();
        let mut chosen: Option<NodeId> = None;
        while let Some((load, id)) = self.pop_free() {
            let ok = match &compiled {
                None => true,
                Some(c) => self
                    .plane
                    .cache
                    .get(id, now)
                    .is_some_and(|snap| c.holds(snap)),
            };
            if ok {
                chosen = Some(id);
                break;
            }
            rejected.push((load, id));
        }
        for (load, id) in rejected {
            self.plane.heap.push(Reverse((OrdF64(load), id)));
        }
        match chosen {
            Some(id) => Ok(self.insert_node(id, constraints.cloned(), false)),
            None if self.plane.heap_loads.is_empty() => Err(VdaError::InsufficientNodes {
                requested: 1,
                available: 0,
            }),
            None => Err(VdaError::ConstraintsUnsatisfied),
        }
    }

    /// Heap-indexed `alloc_many`; all-or-nothing like the slow path.
    fn alloc_many_fast(
        &mut self,
        pool: &ResourcePool,
        n: usize,
        constraints: Option<&JsConstraints>,
    ) -> Result<Vec<NodeKey>> {
        self.plane_refresh(pool);
        let now = self.plane.last_refresh.unwrap_or_else(|| pool.now());
        let compiled = constraints.map(|c| c.compile());
        let mut satisfying: Vec<(f64, NodeId)> = Vec::new();
        let mut rejected: Vec<(f64, NodeId)> = Vec::new();
        while satisfying.len() < n {
            let Some((load, id)) = self.pop_free() else {
                break;
            };
            let ok = match &compiled {
                None => true,
                Some(c) => self
                    .plane
                    .cache
                    .get(id, now)
                    .is_some_and(|snap| c.holds(snap)),
            };
            if ok {
                satisfying.push((load, id));
            } else {
                rejected.push((load, id));
            }
        }
        if satisfying.len() < n {
            // The heap was drained, so satisfying + rejected is every free
            // machine — the same candidate set the slow path would count.
            let available = satisfying.len();
            let free_total = available + rejected.len();
            for (load, id) in satisfying.into_iter().chain(rejected) {
                self.plane.heap.push(Reverse((OrdF64(load), id)));
            }
            return Err(if constraints.is_some() && free_total >= n {
                VdaError::ConstraintsUnsatisfied
            } else {
                VdaError::InsufficientNodes {
                    requested: n,
                    available,
                }
            });
        }
        for (load, id) in rejected {
            self.plane.heap.push(Reverse((OrdF64(load), id)));
        }
        Ok(satisfying
            .into_iter()
            .map(|(_, id)| self.insert_node(id, constraints.cloned(), false))
            .collect())
    }

    // ------------------------------------------------------------ structure

    pub fn new_cluster(&mut self, constraints: Option<JsConstraints>) -> ClusterKey {
        let key = ClusterKey(self.clusters.len() as u32);
        self.clusters.push(ClusterEntry {
            nodes: Vec::new(),
            parent: None,
            freed: false,
            constraints,
            manager: None,
            backup: None,
            rollup: ParamRollup::new(),
        });
        key
    }

    pub fn new_site(&mut self, constraints: Option<JsConstraints>) -> SiteKey {
        let key = SiteKey(self.sites.len() as u32);
        self.sites.push(SiteEntry {
            clusters: Vec::new(),
            parent: None,
            freed: false,
            constraints,
            manager: None,
            backup: None,
            rollup: ParamRollup::new(),
        });
        key
    }

    pub fn new_domain(&mut self, constraints: Option<JsConstraints>) -> DomainKey {
        let key = DomainKey(self.domains.len() as u32);
        self.domains.push(DomainEntry {
            sites: Vec::new(),
            freed: false,
            constraints,
            manager: None,
            backup: None,
            rollup: ParamRollup::new(),
        });
        key
    }

    pub fn add_node_to_cluster(&mut self, ck: ClusterKey, nk: NodeKey) -> Result<()> {
        if self.cluster(ck).freed {
            return Err(VdaError::Freed("cluster"));
        }
        let node = self.node(nk);
        if node.freed {
            return Err(VdaError::Freed("node"));
        }
        if node.parent.is_some() {
            return Err(VdaError::AlreadyAttached("node"));
        }
        self.node_mut(nk).parent = Some(ck);
        self.cluster_mut(ck).nodes.push(nk);
        self.refresh_managers_for_cluster(ck, false);
        self.plane_attach_node(nk);
        Ok(())
    }

    pub fn add_cluster_to_site(&mut self, sk: SiteKey, ck: ClusterKey) -> Result<()> {
        if self.site(sk).freed {
            return Err(VdaError::Freed("site"));
        }
        let cluster = self.cluster(ck);
        if cluster.freed {
            return Err(VdaError::Freed("cluster"));
        }
        if cluster.parent.is_some() {
            return Err(VdaError::AlreadyAttached("cluster"));
        }
        self.cluster_mut(ck).parent = Some(sk);
        self.site_mut(sk).clusters.push(ck);
        self.refresh_site_manager(sk, false);
        if let Some(dk) = self.site(sk).parent {
            self.refresh_domain_manager(dk, false);
        }
        self.plane_lift_cluster(sk, ck);
        Ok(())
    }

    pub fn add_site_to_domain(&mut self, dk: DomainKey, sk: SiteKey) -> Result<()> {
        if self.domain(dk).freed {
            return Err(VdaError::Freed("domain"));
        }
        let site = self.site(sk);
        if site.freed {
            return Err(VdaError::Freed("site"));
        }
        if site.parent.is_some() {
            return Err(VdaError::AlreadyAttached("site"));
        }
        self.site_mut(sk).parent = Some(dk);
        self.domain_mut(dk).sites.push(sk);
        self.refresh_domain_manager(dk, false);
        self.plane_lift_site(dk, sk);
        Ok(())
    }

    /// The (possibly implicit) cluster of a node: every node belongs to a
    /// unique (cluster, site, domain) triple (§3).
    pub fn cluster_of_node(&mut self, nk: NodeKey) -> Result<ClusterKey> {
        if self.node(nk).freed {
            return Err(VdaError::Freed("node"));
        }
        if let Some(ck) = self.node(nk).parent {
            return Ok(ck);
        }
        let ck = self.new_cluster(None);
        self.node_mut(nk).parent = Some(ck);
        self.cluster_mut(ck).nodes.push(nk);
        self.refresh_managers_for_cluster(ck, false);
        self.plane_attach_node(nk);
        Ok(ck)
    }

    /// Read-only variant of [`Self::cluster_of_node`]: `None` when the
    /// implicit cluster has not been materialized yet.
    pub fn cluster_of_node_ref(&self, nk: NodeKey) -> Result<Option<ClusterKey>> {
        if self.node(nk).freed {
            return Err(VdaError::Freed("node"));
        }
        Ok(self.node(nk).parent)
    }

    pub fn site_of_cluster(&mut self, ck: ClusterKey) -> Result<SiteKey> {
        if self.cluster(ck).freed {
            return Err(VdaError::Freed("cluster"));
        }
        if let Some(sk) = self.cluster(ck).parent {
            return Ok(sk);
        }
        let sk = self.new_site(None);
        self.cluster_mut(ck).parent = Some(sk);
        self.site_mut(sk).clusters.push(ck);
        self.refresh_site_manager(sk, false);
        self.plane_lift_cluster(sk, ck);
        Ok(sk)
    }

    /// Read-only variant of [`Self::site_of_cluster`].
    pub fn site_of_cluster_ref(&self, ck: ClusterKey) -> Result<Option<SiteKey>> {
        if self.cluster(ck).freed {
            return Err(VdaError::Freed("cluster"));
        }
        Ok(self.cluster(ck).parent)
    }

    pub fn domain_of_site(&mut self, sk: SiteKey) -> Result<DomainKey> {
        if self.site(sk).freed {
            return Err(VdaError::Freed("site"));
        }
        if let Some(dk) = self.site(sk).parent {
            return Ok(dk);
        }
        let dk = self.new_domain(None);
        self.site_mut(sk).parent = Some(dk);
        self.domain_mut(dk).sites.push(sk);
        self.refresh_domain_manager(dk, false);
        self.plane_lift_site(dk, sk);
        Ok(dk)
    }

    /// Read-only variant of [`Self::domain_of_site`].
    pub fn domain_of_site_ref(&self, sk: SiteKey) -> Result<Option<DomainKey>> {
        if self.site(sk).freed {
            return Err(VdaError::Freed("site"));
        }
        Ok(self.site(sk).parent)
    }

    // --------------------------------------------------------------- freeing

    pub fn free_node(&mut self, nk: NodeKey) -> Result<()> {
        if self.node(nk).freed {
            return Err(VdaError::Freed("node"));
        }
        let phys = self.node(nk).phys;
        let parent = self.node(nk).parent;
        // Remove the node's contribution while its parent chain is intact.
        self.plane_detach_node(nk);
        self.node_mut(nk).freed = true;
        if let Some(count) = self.allocated.get_mut(&phys) {
            *count = count.saturating_sub(1);
        }
        if let Some(ck) = parent {
            self.cluster_mut(ck).nodes.retain(|&k| k != nk);
            self.refresh_managers_for_cluster(ck, false);
        }
        if self.plane.enabled {
            self.plane.dirty.remove(&nk);
            self.plane.watch.remove(&nk);
            if let Some(v) = self.plane.live_by_phys.get_mut(&phys) {
                v.retain(|&k| k != nk);
            }
            // If the machine just became free again, re-index it under its
            // cached load (bit-exact, so the heap entry stays valid).
            let now_free = !self.failed.contains(&phys)
                && self.allocated.get(&phys).copied().unwrap_or(0) == 0;
            if now_free {
                if let Some(load) = self.plane.cache.peek(phys).map(plane::load_of) {
                    if self.plane.heap_loads.get(&phys) != Some(&load) {
                        self.plane.heap_push(phys, load);
                    }
                }
            }
        }
        self.emit(VdaEvent::NodeFreed { node: nk, phys });
        Ok(())
    }

    pub fn free_cluster(&mut self, ck: ClusterKey) -> Result<()> {
        if self.cluster(ck).freed {
            return Err(VdaError::Freed("cluster"));
        }
        for nk in self.cluster(ck).nodes.clone() {
            // Detach the rollup contribution while the full ancestor chain
            // is still visible, then drop the parent link so free_node does
            // not mutate the cluster we are tearing down.
            self.plane_detach_node(nk);
            self.node_mut(nk).parent = None;
            self.free_node(nk)?;
        }
        let parent = self.cluster(ck).parent;
        let c = self.cluster_mut(ck);
        c.freed = true;
        c.nodes.clear();
        c.manager = None;
        c.backup = None;
        if let Some(sk) = parent {
            self.site_mut(sk).clusters.retain(|&k| k != ck);
            self.refresh_site_manager(sk, false);
            if let Some(dk) = self.site(sk).parent {
                self.refresh_domain_manager(dk, false);
            }
        }
        Ok(())
    }

    pub fn free_site(&mut self, sk: SiteKey) -> Result<()> {
        if self.site(sk).freed {
            return Err(VdaError::Freed("site"));
        }
        for ck in self.site(sk).clusters.clone() {
            if self.plane.enabled {
                // Detach node contributions while cluster->site->domain
                // links are still intact.
                for nk in self.cluster(ck).nodes.clone() {
                    self.plane_detach_node(nk);
                }
            }
            self.cluster_mut(ck).parent = None;
            self.free_cluster(ck)?;
        }
        let parent = self.site(sk).parent;
        let s = self.site_mut(sk);
        s.freed = true;
        s.clusters.clear();
        s.manager = None;
        s.backup = None;
        if let Some(dk) = parent {
            self.domain_mut(dk).sites.retain(|&k| k != sk);
            self.refresh_domain_manager(dk, false);
        }
        Ok(())
    }

    pub fn free_domain(&mut self, dk: DomainKey) -> Result<()> {
        if self.domain(dk).freed {
            return Err(VdaError::Freed("domain"));
        }
        for sk in self.domain(dk).sites.clone() {
            if self.plane.enabled {
                for ck in self.site(sk).clusters.clone() {
                    for nk in self.cluster(ck).nodes.clone() {
                        self.plane_detach_node(nk);
                    }
                }
            }
            self.site_mut(sk).parent = None;
            self.free_site(sk)?;
        }
        let d = self.domain_mut(dk);
        d.freed = true;
        d.sites.clear();
        d.manager = None;
        d.backup = None;
        Ok(())
    }

    // -------------------------------------------------------------- managers

    fn node_is_operational(&self, nk: NodeKey) -> bool {
        let n = self.node(nk);
        !n.freed && !self.failed.contains(&n.phys)
    }

    /// Re-establishes the manager/backup of a cluster and propagates up the
    /// hierarchy. `takeover` marks backup promotions after a failure.
    pub fn refresh_managers_for_cluster(&mut self, ck: ClusterKey, takeover: bool) {
        self.refresh_cluster_manager(ck, takeover);
        if let Some(sk) = self.cluster(ck).parent {
            self.refresh_site_manager(sk, takeover);
            if let Some(dk) = self.site(sk).parent {
                self.refresh_domain_manager(dk, takeover);
            }
        }
    }

    fn refresh_cluster_manager(&mut self, ck: ClusterKey, takeover: bool) {
        let members: Vec<NodeKey> = self.cluster(ck).nodes.clone();
        let live: Vec<NodeKey> = members
            .into_iter()
            .filter(|&nk| self.node_is_operational(nk))
            .collect();
        let current = self.cluster(ck).manager;
        let backup = self.cluster(ck).backup;
        let current_ok = current.is_some_and(|m| live.contains(&m));
        let new_manager;
        let mut was_takeover = false;
        if current_ok {
            new_manager = current;
        } else if backup.is_some_and(|b| live.contains(&b)) {
            // Backup promotion (§5.1 fault tolerance).
            new_manager = backup;
            was_takeover = takeover;
        } else {
            new_manager = live.first().copied();
        }
        let new_backup = live.iter().copied().find(|&nk| Some(nk) != new_manager);
        let c = self.cluster_mut(ck);
        let changed = c.manager != new_manager;
        c.manager = new_manager;
        c.backup = new_backup;
        if changed {
            self.emit(VdaEvent::ManagerChanged {
                scope: ManagerScope::Cluster(ck),
                new_manager,
                takeover: was_takeover,
            });
        }
    }

    fn refresh_site_manager(&mut self, sk: SiteKey, takeover: bool) {
        // Valid site managers are exactly the managers of the site's live
        // clusters ("Only a cluster manager can be a site manager").
        let cluster_managers: Vec<NodeKey> = self
            .site(sk)
            .clusters
            .iter()
            .filter(|&&ck| !self.cluster(ck).freed)
            .filter_map(|&ck| self.cluster(ck).manager)
            .filter(|&nk| self.node_is_operational(nk))
            .collect();
        let current = self.site(sk).manager;
        let backup = self.site(sk).backup;
        let current_ok = current.is_some_and(|m| cluster_managers.contains(&m));
        let new_manager;
        let mut was_takeover = false;
        if current_ok {
            new_manager = current;
        } else if backup.is_some_and(|b| cluster_managers.contains(&b)) {
            new_manager = backup;
            was_takeover = takeover;
        } else {
            new_manager = cluster_managers.first().copied();
        }
        let new_backup = cluster_managers
            .iter()
            .copied()
            .find(|&nk| Some(nk) != new_manager);
        let s = self.site_mut(sk);
        let changed = s.manager != new_manager;
        s.manager = new_manager;
        s.backup = new_backup;
        if changed {
            self.emit(VdaEvent::ManagerChanged {
                scope: ManagerScope::Site(sk),
                new_manager,
                takeover: was_takeover,
            });
        }
    }

    fn refresh_domain_manager(&mut self, dk: DomainKey, takeover: bool) {
        // Valid domain managers are the managers of the domain's live sites
        // ("only a site manager can be a domain manager").
        let site_managers: Vec<NodeKey> = self
            .domain(dk)
            .sites
            .iter()
            .filter(|&&sk| !self.site(sk).freed)
            .filter_map(|&sk| self.site(sk).manager)
            .filter(|&nk| self.node_is_operational(nk))
            .collect();
        let current = self.domain(dk).manager;
        let backup = self.domain(dk).backup;
        let current_ok = current.is_some_and(|m| site_managers.contains(&m));
        let new_manager;
        let mut was_takeover = false;
        if current_ok {
            new_manager = current;
        } else if backup.is_some_and(|b| site_managers.contains(&b)) {
            new_manager = backup;
            was_takeover = takeover;
        } else {
            new_manager = site_managers.first().copied();
        }
        let new_backup = site_managers
            .iter()
            .copied()
            .find(|&nk| Some(nk) != new_manager);
        let d = self.domain_mut(dk);
        let changed = d.manager != new_manager;
        d.manager = new_manager;
        d.backup = new_backup;
        if changed {
            self.emit(VdaEvent::ManagerChanged {
                scope: ManagerScope::Domain(dk),
                new_manager,
                takeover: was_takeover,
            });
        }
    }

    // --------------------------------------------------------------- failure

    /// Declares a physical machine failed: managers fail over (backups take
    /// over, §5.1), then every virtual node it backed is released.
    pub fn handle_phys_failure(&mut self, phys: NodeId) {
        if !self.failed.insert(phys) {
            return; // already handled
        }
        if self.plane.enabled {
            // A failed machine's sample is meaningless and it must never be
            // handed out by the heap.
            self.plane.cache.invalidate(phys);
            self.plane.heap_loads.remove(&phys);
        }
        self.emit(VdaEvent::NodeFailed { phys });
        let affected: Vec<NodeKey> = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| !n.freed && n.phys == phys)
            .map(|(i, _)| NodeKey(i as u32))
            .collect();
        // First fail over every manager role held by the dead machine...
        let clusters: Vec<ClusterKey> = affected
            .iter()
            .filter_map(|&nk| self.node(nk).parent)
            .collect();
        for ck in clusters {
            self.refresh_managers_for_cluster(ck, true);
        }
        // ...then release the dead node(s) ("the manager of this cluster
        // simply releases this node").
        for nk in affected {
            let _ = self.free_node(nk);
        }
    }

    // ----------------------------------------------------- aggregation plane

    /// Applies a plane configuration. Enabling rebuilds every derived
    /// structure from the pool, so the plane can be switched on mid-flight;
    /// disabling drops them and reverts to the slow path.
    pub fn set_plane_config(&mut self, pool: &ResourcePool, cfg: PlaneConfig) {
        self.plane.cache.set_ttl(cfg.ttl);
        self.plane.dirty_threshold = cfg.dirty_threshold;
        if cfg.enabled == self.plane.enabled {
            if cfg.enabled {
                // TTL/threshold may have changed: force a sweep next time.
                self.plane.last_refresh = None;
            }
            return;
        }
        self.plane.enabled = cfg.enabled;
        if cfg.enabled {
            self.rebuild_plane(pool);
        } else {
            self.plane.clear();
            for c in &mut self.clusters {
                c.rollup = ParamRollup::new();
            }
            for s in &mut self.sites {
                s.rollup = ParamRollup::new();
            }
            for d in &mut self.domains {
                d.rollup = ParamRollup::new();
            }
        }
    }

    /// Current plane configuration.
    pub fn plane_config(&self) -> PlaneConfig {
        PlaneConfig {
            enabled: self.plane.enabled,
            ttl: self.plane.cache.ttl(),
            dirty_threshold: self.plane.dirty_threshold,
        }
    }

    /// Rebuilds cache, heap, contributions and rollups from scratch.
    fn rebuild_plane(&mut self, pool: &ResourcePool) {
        self.plane.clear();
        for c in &mut self.clusters {
            c.rollup = ParamRollup::new();
        }
        for s in &mut self.sites {
            s.rollup = ParamRollup::new();
        }
        for d in &mut self.domains {
            d.rollup = ParamRollup::new();
        }
        let now = pool.now();
        let ids = pool.ids();
        for &id in &ids {
            if let Ok(snap) = pool.snapshot_of(id) {
                self.plane.cache.put(id, snap);
            }
        }
        let live: Vec<(NodeKey, NodeId)> = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| !n.freed)
            .map(|(i, n)| (NodeKey(i as u32), n.phys))
            .collect();
        for &(nk, phys) in &live {
            self.plane.live_by_phys.entry(phys).or_default().push(nk);
            self.plane.dirty.insert(nk);
            self.plane_attach_node(nk);
        }
        for &id in &ids {
            let free =
                !self.failed.contains(&id) && self.allocated.get(&id).copied().unwrap_or(0) == 0;
            if free {
                if let Some(load) = self.plane.cache.peek(id).map(plane::load_of) {
                    self.plane.heap_push(id, load);
                }
            }
        }
        self.plane.last_refresh = Some(now);
        self.plane.cached_ids = ids;
    }

    /// Ancestor chain of a node as it stands right now.
    fn ancestors(&self, nk: NodeKey) -> (Option<ClusterKey>, Option<SiteKey>, Option<DomainKey>) {
        let ck = self.node(nk).parent;
        let sk = ck.and_then(|c| self.cluster(c).parent);
        let dk = sk.and_then(|s| self.site(s).parent);
        (ck, sk, dk)
    }

    /// Starts counting `nk`'s cached sample into its ancestors' rollups.
    /// No-op when the plane is off, the node is unattached, or its machine
    /// has no cached sample (failed machines after invalidation).
    fn plane_attach_node(&mut self, nk: NodeKey) {
        if !self.plane.enabled {
            return;
        }
        let (ck, sk, dk) = self.ancestors(nk);
        let Some(ck) = ck else {
            return;
        };
        let phys = self.node(nk).phys;
        let Some(snap) = self.plane.cache.peek(phys).cloned() else {
            return;
        };
        self.cluster_mut(ck).rollup.add(&snap);
        if let Some(sk) = sk {
            self.site_mut(sk).rollup.add(&snap);
        }
        if let Some(dk) = dk {
            self.domain_mut(dk).rollup.add(&snap);
        }
        self.plane.contrib.insert(nk, snap);
        self.plane.dirty.insert(nk);
    }

    /// Removes `nk`'s contribution from its ancestors' rollups. Idempotent:
    /// a second call finds no stored contribution and does nothing. Must run
    /// while the node's parent chain is still intact.
    fn plane_detach_node(&mut self, nk: NodeKey) {
        if !self.plane.enabled {
            return;
        }
        let Some(snap) = self.plane.contrib.remove(&nk) else {
            return;
        };
        let (ck, sk, dk) = self.ancestors(nk);
        if let Some(ck) = ck {
            self.cluster_mut(ck).rollup.remove(&snap);
        }
        if let Some(sk) = sk {
            self.site_mut(sk).rollup.remove(&snap);
        }
        if let Some(dk) = dk {
            self.domain_mut(dk).rollup.remove(&snap);
        }
        self.plane.dirty.remove(&nk);
        self.plane.watch.remove(&nk);
    }

    /// A cluster just gained a site parent: its members' contributions now
    /// also count toward the site (and the site's domain, if any).
    fn plane_lift_cluster(&mut self, sk: SiteKey, ck: ClusterKey) {
        if !self.plane.enabled {
            return;
        }
        let dk = self.site(sk).parent;
        for nk in self.cluster(ck).nodes.clone() {
            if let Some(snap) = self.plane.contrib.get(&nk).cloned() {
                self.site_mut(sk).rollup.add(&snap);
                if let Some(dk) = dk {
                    self.domain_mut(dk).rollup.add(&snap);
                }
            }
            // Ancestor constraints changed: re-evaluate on the next scan.
            self.plane.dirty.insert(nk);
        }
    }

    /// A site just gained a domain parent: lift every contained node's
    /// contribution into the domain rollup.
    fn plane_lift_site(&mut self, dk: DomainKey, sk: SiteKey) {
        if !self.plane.enabled {
            return;
        }
        for ck in self.site(sk).clusters.clone() {
            for nk in self.cluster(ck).nodes.clone() {
                if let Some(snap) = self.plane.contrib.get(&nk).cloned() {
                    self.domain_mut(dk).rollup.add(&snap);
                }
                self.plane.dirty.insert(nk);
            }
        }
    }

    /// Refreshes the per-machine sample cache if the TTL window has lapsed
    /// (or pool membership changed), propagating new samples into rollups,
    /// the placement heap and the dirty set. Cheap when fresh: a virtual
    /// clock read and a membership comparison.
    pub fn plane_refresh(&mut self, pool: &ResourcePool) {
        if !self.plane.enabled {
            return;
        }
        let now = pool.now();
        let ids = pool.ids();
        let fresh = self
            .plane
            .last_refresh
            .is_some_and(|t| now - t <= self.plane.cache.ttl());
        if fresh && ids == self.plane.cached_ids {
            return;
        }
        if ids != self.plane.cached_ids {
            let keep: HashSet<NodeId> = ids.iter().copied().collect();
            self.plane.cache.retain(|id| keep.contains(&id));
            self.plane.heap_loads.retain(|id, _| keep.contains(id));
        }
        let mut changed: Vec<(NodeId, Option<SysSnapshot>, SysSnapshot)> = Vec::new();
        for &id in &ids {
            if self.plane.cache.get(id, now).is_none() {
                let Ok(snap) = pool.snapshot_of(id) else {
                    continue;
                };
                let old = self.plane.cache.put(id, snap.clone());
                if old.as_ref() != Some(&snap) {
                    changed.push((id, old, snap));
                }
            }
            let free =
                !self.failed.contains(&id) && self.allocated.get(&id).copied().unwrap_or(0) == 0;
            if free {
                let load = self
                    .plane
                    .cache
                    .peek(id)
                    .map(plane::load_of)
                    .unwrap_or(f64::MAX);
                if self.plane.heap_loads.get(&id) != Some(&load) {
                    self.plane.heap_push(id, load);
                }
            } else {
                self.plane.heap_loads.remove(&id);
            }
        }
        let threshold = self.plane.dirty_threshold;
        for (id, old, snap) in changed {
            let exceeded = old
                .as_ref()
                .is_none_or(|o| plane::delta_exceeds(o, &snap, threshold));
            let nks: Vec<NodeKey> = self
                .plane
                .live_by_phys
                .get(&id)
                .cloned()
                .unwrap_or_default();
            for nk in nks {
                if exceeded {
                    self.plane.dirty.insert(nk);
                }
                if let Some(prev) = self.plane.contrib.get(&nk).cloned() {
                    let (ck, sk, dk) = self.ancestors(nk);
                    if let Some(ck) = ck {
                        self.cluster_mut(ck).rollup.replace(&prev, &snap);
                    }
                    if let Some(sk) = sk {
                        self.site_mut(sk).rollup.replace(&prev, &snap);
                    }
                    if let Some(dk) = dk {
                        self.domain_mut(dk).rollup.replace(&prev, &snap);
                    }
                    self.plane.contrib.insert(nk, snap.clone());
                }
            }
        }
        self.plane.last_refresh = Some(now);
        self.plane.cached_ids = ids;
    }

    /// Scans for constraint violations. Full mode evaluates every live
    /// constrained node against a fresh sample (the pre-plane behavior);
    /// dirty mode re-evaluates only nodes whose cached sample moved past
    /// the threshold plus the current watch set, against cached samples.
    /// Given the same samples both modes report the same violations: an
    /// unchanged sample cannot change an unchanged constraint's verdict.
    pub fn scan_violations(&mut self, pool: &ResourcePool, dirty_only: bool) -> ViolationScan {
        if dirty_only && self.plane.enabled {
            self.scan_violations_dirty(pool)
        } else {
            self.scan_violations_full(pool)
        }
    }

    fn scan_violations_full(&mut self, pool: &ResourcePool) -> ViolationScan {
        let mut violations = Vec::new();
        let mut evaluated = 0usize;
        for (i, n) in self.nodes.iter().enumerate() {
            if n.freed {
                continue;
            }
            let nk = NodeKey(i as u32);
            let constraints = self.effective_constraints(nk);
            if constraints.is_empty() {
                continue;
            }
            evaluated += 1;
            let Ok(snap) = pool.snapshot_of(n.phys) else {
                continue;
            };
            if !constraints.holds(&snap) {
                violations.push((nk, n.phys));
            }
        }
        if self.plane.enabled {
            // A full scan subsumes all pending dirt and resets the watch
            // set to what is actually violating right now.
            self.plane.watch = violations.iter().map(|&(nk, _)| nk).collect();
            self.plane.dirty.clear();
        }
        ViolationScan {
            violations,
            evaluated,
        }
    }

    fn scan_violations_dirty(&mut self, pool: &ResourcePool) -> ViolationScan {
        self.plane_refresh(pool);
        let now = self.plane.last_refresh.unwrap_or_else(|| pool.now());
        let mut to_eval: Vec<NodeKey> =
            self.plane.dirty.union(&self.plane.watch).copied().collect();
        to_eval.sort_unstable();
        let mut violations = Vec::new();
        let mut evaluated = 0usize;
        let mut watch = HashSet::new();
        for nk in to_eval {
            let (freed, phys) = {
                let n = self.node(nk);
                (n.freed, n.phys)
            };
            if freed {
                continue;
            }
            let constraints = self.effective_constraints(nk);
            if constraints.is_empty() {
                continue;
            }
            evaluated += 1;
            let holds = match self.plane.cache.get(phys, now) {
                Some(snap) => constraints.holds(snap),
                // No cached sample (failed machine edge): fall back to a
                // fresh one; treat an unreachable machine as conforming —
                // failure handling, not migration, deals with it.
                None => pool
                    .snapshot_of(phys)
                    .map(|s| constraints.holds(&s))
                    .unwrap_or(true),
            };
            if !holds {
                violations.push((nk, phys));
                watch.insert(nk);
            }
        }
        self.plane.watch = watch;
        self.plane.dirty.clear();
        ViolationScan {
            violations,
            evaluated,
        }
    }

    // --------------------------------------------------------------- queries

    /// Effective constraints of a node: its own plus every ancestor's.
    pub fn effective_constraints(&self, nk: NodeKey) -> JsConstraints {
        let mut out = JsConstraints::new();
        let node = self.node(nk);
        if let Some(c) = &node.constraints {
            out.and(c);
        }
        if let Some(ck) = node.parent {
            if let Some(c) = &self.cluster(ck).constraints {
                out.and(c);
            }
            if let Some(sk) = self.cluster(ck).parent {
                if let Some(c) = &self.site(sk).constraints {
                    out.and(c);
                }
                if let Some(dk) = self.site(sk).parent {
                    if let Some(c) = &self.domain(dk).constraints {
                        out.and(c);
                    }
                }
            }
        }
        out
    }

    /// Physical machines of live peers of `nk`, ordered by locality: same
    /// cluster first, then same site, then same domain (§5.2: "To maintain
    /// locality JRS tries to migrate objects of one node to another node
    /// within the same cluster of the original node", then site, and so on).
    pub fn locality_candidates(&self, nk: NodeKey) -> Vec<NodeId> {
        let mut seen: HashSet<NodeId> = HashSet::new();
        let mut out: Vec<NodeId> = Vec::new();
        let self_phys = self.node(nk).phys;
        seen.insert(self_phys);

        let push_node =
            |state: &VdaState, k: NodeKey, out: &mut Vec<NodeId>, seen: &mut HashSet<NodeId>| {
                let n = state.node(k);
                if !n.freed && !state.failed.contains(&n.phys) && seen.insert(n.phys) {
                    out.push(n.phys);
                }
            };

        let Some(ck) = self.node(nk).parent else {
            return out;
        };
        for &k in &self.cluster(ck).nodes {
            push_node(self, k, &mut out, &mut seen);
        }
        let Some(sk) = self.cluster(ck).parent else {
            return out;
        };
        for &c in &self.site(sk).clusters {
            for &k in &self.cluster(c).nodes {
                push_node(self, k, &mut out, &mut seen);
            }
        }
        let Some(dk) = self.site(sk).parent else {
            return out;
        };
        for &s in &self.domain(dk).sites {
            for &c in &self.site(s).clusters {
                for &k in &self.cluster(c).nodes {
                    push_node(self, k, &mut out, &mut seen);
                }
            }
        }
        out
    }

    /// All physical machines under a cluster (live nodes only).
    pub fn cluster_machines(&self, ck: ClusterKey) -> Vec<NodeId> {
        self.cluster(ck)
            .nodes
            .iter()
            .map(|&nk| self.node(nk).phys)
            .collect()
    }

    /// All physical machines under a site.
    pub fn site_machines(&self, sk: SiteKey) -> Vec<NodeId> {
        self.site(sk)
            .clusters
            .iter()
            .flat_map(|&ck| self.cluster_machines(ck))
            .collect()
    }

    /// All physical machines under a domain.
    pub fn domain_machines(&self, dk: DomainKey) -> Vec<NodeId> {
        self.domain(dk)
            .sites
            .iter()
            .flat_map(|&sk| self.site_machines(sk))
            .collect()
    }
}
