//! Arena keys for virtual-architecture components.

use std::fmt;

macro_rules! key_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub(crate) u32);

        impl $name {
            /// Raw arena index.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Debug::fmt(self, f)
            }
        }
    };
}

key_type!(
    /// Key of a virtual node component.
    NodeKey,
    "vn"
);
key_type!(
    /// Key of a cluster component.
    ClusterKey,
    "vc"
);
key_type!(
    /// Key of a site component.
    SiteKey,
    "vs"
);
key_type!(
    /// Key of a domain component.
    DomainKey,
    "vd"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_format_with_prefixes() {
        assert_eq!(NodeKey(3).to_string(), "vn3");
        assert_eq!(ClusterKey(1).to_string(), "vc1");
        assert_eq!(SiteKey(0).to_string(), "vs0");
        assert_eq!(DomainKey(9).to_string(), "vd9");
    }

    #[test]
    fn keys_are_ordered_by_index() {
        assert!(NodeKey(1) < NodeKey(2));
        assert_eq!(ClusterKey(5).index(), 5);
    }
}
