//! Events emitted by the virtual-architecture registry.

use crate::{ClusterKey, DomainKey, NodeKey, SiteKey};
use jsym_net::NodeId;

/// Which component's manager changed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ManagerScope {
    /// A cluster manager.
    Cluster(ClusterKey),
    /// A site manager.
    Site(SiteKey),
    /// A domain manager.
    Domain(DomainKey),
}

/// Registry events, consumed by the runtime (auto-migration, JS-Shell log).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VdaEvent {
    /// A virtual node was allocated on a physical machine.
    NodeAllocated {
        /// The new virtual node.
        node: NodeKey,
        /// The machine backing it.
        phys: NodeId,
    },
    /// A virtual node was released (explicitly or by failure handling).
    NodeFreed {
        /// The released virtual node.
        node: NodeKey,
        /// The machine that backed it.
        phys: NodeId,
    },
    /// A physical machine was declared failed.
    NodeFailed {
        /// The failed machine.
        phys: NodeId,
    },
    /// A manager was (re)assigned; `takeover` is true when a backup was
    /// promoted after a failure rather than a fresh election.
    ManagerChanged {
        /// Scope of the management change.
        scope: ManagerScope,
        /// Virtual node of the new manager, if one could be found.
        new_manager: Option<NodeKey>,
        /// Whether this was a backup promotion after failure.
        takeover: bool,
    },
}
