//! The physical resource pool.

use crate::{Result, VdaError};
use jsym_net::NodeId;
use jsym_sysmon::{SimMachine, SysSnapshot};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

struct PoolState {
    machines: BTreeMap<NodeId, SimMachine>,
    next_id: u32,
}

/// The set of physical machines the JS-Shell has registered with the runtime
/// (paper §5: "The nodes on which JRS is installed are configured by using
/// the JS-Shell. The set of nodes can be changed by adding or removing nodes
/// dynamically").
///
/// Cloning shares the pool.
#[derive(Clone)]
pub struct ResourcePool {
    state: Arc<RwLock<PoolState>>,
}

impl ResourcePool {
    /// An empty pool.
    pub fn new() -> Self {
        ResourcePool {
            state: Arc::new(RwLock::new(PoolState {
                machines: BTreeMap::new(),
                next_id: 0,
            })),
        }
    }

    /// Adds a machine, returning its id.
    pub fn add_machine(&self, machine: SimMachine) -> NodeId {
        let mut st = self.state.write();
        let id = NodeId(st.next_id);
        st.next_id += 1;
        st.machines.insert(id, machine);
        id
    }

    /// Removes a machine (JS-Shell shrink), returning it if present.
    pub fn remove_machine(&self, id: NodeId) -> Option<SimMachine> {
        self.state.write().machines.remove(&id)
    }

    /// Looks up a machine by id.
    pub fn machine(&self, id: NodeId) -> Result<SimMachine> {
        self.state
            .read()
            .machines
            .get(&id)
            .cloned()
            .ok_or(VdaError::UnknownPhysicalNode(id))
    }

    /// Finds a machine by host name.
    pub fn by_name(&self, name: &str) -> Result<(NodeId, SimMachine)> {
        self.state
            .read()
            .machines
            .iter()
            .find(|(_, m)| m.spec().name == name)
            .map(|(id, m)| (*id, m.clone()))
            .ok_or_else(|| VdaError::NoSuchMachine(name.to_owned()))
    }

    /// All machine ids, ascending.
    pub fn ids(&self) -> Vec<NodeId> {
        self.state.read().machines.keys().copied().collect()
    }

    /// Number of machines.
    pub fn len(&self) -> usize {
        self.state.read().machines.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.state.read().machines.is_empty()
    }

    /// Current snapshot of a machine's system parameters.
    pub fn snapshot_of(&self, id: NodeId) -> Result<SysSnapshot> {
        Ok(self.machine(id)?.snapshot())
    }

    /// Whether `id` is registered.
    pub fn contains(&self, id: NodeId) -> bool {
        self.state.read().machines.contains_key(&id)
    }

    /// Current virtual time as seen by the pool's machines (`0.0` when the
    /// pool is empty). All machines of one deployment share a clock.
    pub fn now(&self) -> f64 {
        self.state
            .read()
            .machines
            .values()
            .next()
            .map(|m| m.clock().now())
            .unwrap_or(0.0)
    }
}

impl Default for ResourcePool {
    fn default() -> Self {
        ResourcePool::new()
    }
}

impl std::fmt::Debug for ResourcePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResourcePool")
            .field("machines", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsym_net::SimClock;
    use jsym_sysmon::{LoadModel, LoadProfile, MachineSpec, SysParam};

    fn mk(name: &str) -> SimMachine {
        SimMachine::new(
            MachineSpec::generic(name, 10.0, 128.0),
            LoadModel::new(LoadProfile::Idle, 0),
            SimClock::default(),
        )
    }

    #[test]
    fn add_and_lookup() {
        let pool = ResourcePool::new();
        let a = pool.add_machine(mk("alpha"));
        let b = pool.add_machine(mk("beta"));
        assert_ne!(a, b);
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.machine(a).unwrap().spec().name, "alpha");
        let (id, m) = pool.by_name("beta").unwrap();
        assert_eq!(id, b);
        assert_eq!(m.spec().name, "beta");
    }

    #[test]
    fn missing_lookups_error() {
        let pool = ResourcePool::new();
        assert!(matches!(
            pool.by_name("ghost"),
            Err(VdaError::NoSuchMachine(_))
        ));
        assert!(matches!(
            pool.machine(NodeId(5)),
            Err(VdaError::UnknownPhysicalNode(_))
        ));
    }

    #[test]
    fn remove_machine_shrinks_pool() {
        let pool = ResourcePool::new();
        let a = pool.add_machine(mk("a"));
        assert!(pool.contains(a));
        let m = pool.remove_machine(a).unwrap();
        assert_eq!(m.spec().name, "a");
        assert!(!pool.contains(a));
        assert!(pool.is_empty());
        // Ids are not recycled.
        let b = pool.add_machine(mk("b"));
        assert_ne!(a, b);
    }

    #[test]
    fn snapshot_of_live_machine() {
        let pool = ResourcePool::new();
        let a = pool.add_machine(mk("a"));
        let snap = pool.snapshot_of(a).unwrap();
        assert_eq!(snap.str(SysParam::NodeName), Some("a"));
    }

    #[test]
    fn clones_share_state() {
        let pool = ResourcePool::new();
        let clone = pool.clone();
        pool.add_machine(mk("shared"));
        assert_eq!(clone.len(), 1);
    }
}
