//! Errors for virtual-architecture operations.

use jsym_net::NodeId;
use std::fmt;

/// Why a virtual-architecture operation failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VdaError {
    /// No machine with that name is registered in the pool.
    NoSuchMachine(String),
    /// The pool has no machine with this id (removed by the JS-Shell?).
    UnknownPhysicalNode(NodeId),
    /// Not enough free machines to satisfy an allocation.
    InsufficientNodes {
        /// How many nodes the request needed.
        requested: usize,
        /// How many unallocated machines were available.
        available: usize,
    },
    /// No unallocated machine satisfies the given constraints.
    ConstraintsUnsatisfied,
    /// A component index was out of range (`getNode(3)` on a 2-node cluster).
    IndexOutOfRange {
        /// What was being indexed ("node", "cluster", "site").
        what: &'static str,
        /// The requested index.
        index: usize,
        /// Number of live members.
        len: usize,
    },
    /// The component has been freed and can no longer be used.
    Freed(&'static str),
    /// The member is not part of the component it was to be removed from.
    NotAMember,
    /// The component already has a parent and cannot be added elsewhere
    /// (every node belongs to a unique (cluster, site, domain) triple).
    AlreadyAttached(&'static str),
    /// The component is empty where a member was required (e.g. electing a
    /// manager of an empty cluster).
    Empty(&'static str),
}

impl fmt::Display for VdaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VdaError::NoSuchMachine(name) => write!(f, "no machine named {name:?} in the pool"),
            VdaError::UnknownPhysicalNode(id) => write!(f, "physical node {id} is not in the pool"),
            VdaError::InsufficientNodes {
                requested,
                available,
            } => write!(
                f,
                "requested {requested} nodes but only {available} are available"
            ),
            VdaError::ConstraintsUnsatisfied => {
                write!(f, "no available machine satisfies the constraints")
            }
            VdaError::IndexOutOfRange { what, index, len } => {
                write!(f, "{what} index {index} out of range (len {len})")
            }
            VdaError::Freed(what) => write!(f, "{what} has been freed"),
            VdaError::NotAMember => write!(f, "component is not a member"),
            VdaError::AlreadyAttached(what) => {
                write!(f, "{what} is already attached to a parent component")
            }
            VdaError::Empty(what) => write!(f, "{what} has no live members"),
        }
    }
}

impl std::error::Error for VdaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        assert_eq!(
            VdaError::NoSuchMachine("milena".into()).to_string(),
            "no machine named \"milena\" in the pool"
        );
        assert_eq!(
            VdaError::InsufficientNodes {
                requested: 5,
                available: 3
            }
            .to_string(),
            "requested 5 nodes but only 3 are available"
        );
        assert_eq!(
            VdaError::IndexOutOfRange {
                what: "node",
                index: 3,
                len: 2
            }
            .to_string(),
            "node index 3 out of range (len 2)"
        );
    }
}
