//! Property-based tests: random operation sequences must preserve the
//! architecture invariants.

use jsym_net::SimClock;
use jsym_sysmon::{LoadModel, LoadProfile, MachineSpec, SimMachine};
use jsym_vda::{Cluster, Domain, Node, ResourcePool, Site, VdaRegistry};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    RequestNode,
    RequestNamed(u8),
    RequestCluster(u8),
    FreeNode(u8),
    FreeCluster(u8),
    AddNodeToCluster(u8, u8),
    FailMachine(u8),
    GetImplicitParents(u8),
    RequestSite(u8, u8),
    FreeSite(u8),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::RequestNode),
        any::<u8>().prop_map(Op::RequestNamed),
        (1u8..4).prop_map(Op::RequestCluster),
        any::<u8>().prop_map(Op::FreeNode),
        any::<u8>().prop_map(Op::FreeCluster),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Op::AddNodeToCluster(a, b)),
        any::<u8>().prop_map(Op::FailMachine),
        any::<u8>().prop_map(Op::GetImplicitParents),
        (1u8..3, 1u8..3).prop_map(|(a, b)| Op::RequestSite(a, b)),
        any::<u8>().prop_map(Op::FreeSite),
    ]
}

const POOL: usize = 8;

fn registry() -> VdaRegistry {
    let pool = ResourcePool::new();
    let clock = SimClock::default();
    for i in 0..POOL {
        pool.add_machine(SimMachine::new(
            MachineSpec::generic(&format!("m{i}"), 10.0, 128.0),
            LoadModel::new(LoadProfile::Constant(0.1 + 0.05 * i as f64), i as u64),
            clock.clone(),
        ));
    }
    VdaRegistry::new(pool)
}

struct World {
    reg: VdaRegistry,
    nodes: Vec<Node>,
    clusters: Vec<Cluster>,
    sites: Vec<Site>,
    domains: Vec<Domain>,
}

impl World {
    fn apply(&mut self, op: &Op) {
        match *op {
            Op::RequestNode => {
                if let Ok(n) = self.reg.request_node() {
                    self.nodes.push(n);
                }
            }
            Op::RequestNamed(i) => {
                let name = format!("m{}", i as usize % POOL);
                if let Ok(n) = self.reg.request_node_named(&name) {
                    self.nodes.push(n);
                }
            }
            Op::RequestCluster(n) => {
                if let Ok(c) = self.reg.request_cluster(n as usize, None) {
                    for i in 0..c.nr_nodes() {
                        self.nodes.push(c.get_node(i).unwrap());
                    }
                    self.clusters.push(c);
                }
            }
            Op::FreeNode(i) => {
                if !self.nodes.is_empty() {
                    let n = &self.nodes[i as usize % self.nodes.len()];
                    let _ = n.free();
                }
            }
            Op::FreeCluster(i) => {
                if !self.clusters.is_empty() {
                    let c = &self.clusters[i as usize % self.clusters.len()];
                    let _ = c.free();
                }
            }
            Op::AddNodeToCluster(a, b) => {
                if !self.nodes.is_empty() && !self.clusters.is_empty() {
                    let n = &self.nodes[a as usize % self.nodes.len()];
                    let c = &self.clusters[b as usize % self.clusters.len()];
                    let _ = c.add_node(n);
                }
            }
            Op::FailMachine(i) => {
                let ids = self.reg.pool().ids();
                if !ids.is_empty() {
                    self.reg.handle_phys_failure(ids[i as usize % ids.len()]);
                }
            }
            Op::GetImplicitParents(i) => {
                if !self.nodes.is_empty() {
                    let n = &self.nodes[i as usize % self.nodes.len()];
                    if let Ok(c) = n.get_cluster() {
                        self.clusters.push(c);
                    }
                    if let Ok(s) = n.get_site() {
                        self.sites.push(s);
                    }
                    if let Ok(d) = n.get_domain() {
                        self.domains.push(d);
                    }
                }
            }
            Op::RequestSite(a, b) => {
                if let Ok(s) = self.reg.request_site(&[a as usize, b as usize], None) {
                    for ci in 0..s.nr_clusters() {
                        let c = s.get_cluster(ci).unwrap();
                        for ni in 0..c.nr_nodes() {
                            self.nodes.push(c.get_node(ni).unwrap());
                        }
                        self.clusters.push(c);
                    }
                    self.sites.push(s);
                }
            }
            Op::FreeSite(i) => {
                if !self.sites.is_empty() {
                    let s = &self.sites[i as usize % self.sites.len()];
                    let _ = s.free();
                }
            }
        }
    }

    fn check_invariants(&self) {
        // 1. Every live cluster's members are live nodes, its manager is a
        //    member and (if present) distinct from the backup.
        for c in &self.clusters {
            if !c.is_live() {
                continue;
            }
            let members: Vec<Node> = (0..c.nr_nodes()).map(|i| c.get_node(i).unwrap()).collect();
            for m in &members {
                assert!(m.is_live(), "cluster member not live");
            }
            if let Some(mgr) = c.manager() {
                assert!(members.contains(&mgr), "manager not a member");
                if let Some(b) = c.backup_manager() {
                    assert_ne!(b, mgr, "backup equals manager");
                    assert!(members.contains(&b), "backup not a member");
                }
            } else {
                assert!(members.is_empty(), "nonempty cluster without manager");
            }
        }
        // 2. Site managers are cluster managers of their own clusters.
        for s in &self.sites {
            if !s.is_live() {
                continue;
            }
            if let Some(sm) = s.manager() {
                let mut ok = false;
                for ci in 0..s.nr_clusters() {
                    if s.get_cluster(ci).unwrap().manager() == Some(sm.clone()) {
                        ok = true;
                    }
                }
                assert!(ok, "site manager is not one of its cluster managers");
            }
        }
        // 3. Domain managers are site managers of their own sites.
        for d in &self.domains {
            if !d.is_live() {
                continue;
            }
            if let Some(dm) = d.manager() {
                let mut ok = false;
                for si in 0..d.nr_sites() {
                    if d.get_site(si).unwrap().manager() == Some(dm.clone()) {
                        ok = true;
                    }
                }
                assert!(ok, "domain manager is not one of its site managers");
            }
        }
        // 4. No live node sits on a failed machine.
        for n in &self.nodes {
            if n.is_live() {
                assert!(!self.reg.is_failed(n.phys()), "live node on failed machine");
            }
        }
        // 5. Locality candidates never include self, duplicates or failures.
        for n in &self.nodes {
            if !n.is_live() {
                continue;
            }
            let cands = self.reg.locality_candidates(n);
            let mut sorted = cands.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), cands.len(), "duplicate candidates");
            assert!(!cands.contains(&n.phys()), "self in candidates");
            for c in cands {
                assert!(!self.reg.is_failed(c), "failed machine as candidate");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_ops_preserve_invariants(ops in proptest::collection::vec(arb_op(), 1..60)) {
        let mut world = World {
            reg: registry(),
            nodes: Vec::new(),
            clusters: Vec::new(),
            sites: Vec::new(),
            domains: Vec::new(),
        };
        for op in &ops {
            world.apply(op);
        }
        world.check_invariants();
    }

    /// Anonymous allocations never share machines.
    #[test]
    fn anonymous_allocations_are_disjoint(k in 1usize..=POOL) {
        let reg = registry();
        let mut phys = Vec::new();
        for _ in 0..k {
            phys.push(reg.request_node().unwrap().phys());
        }
        let mut sorted = phys.clone();
        sorted.sort();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), phys.len());
    }

    /// free + re-request cycles never leak machines.
    #[test]
    fn free_rerequest_never_leaks(rounds in 1usize..10) {
        let reg = registry();
        for _ in 0..rounds {
            let c = reg.request_cluster(POOL, None).unwrap();
            c.free().unwrap();
        }
        // Still possible to take everything.
        prop_assert!(reg.request_cluster(POOL, None).is_ok());
    }
}
