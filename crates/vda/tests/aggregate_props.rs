//! Differential properties for the parameter aggregation plane
//! (DESIGN.md §9): the incremental paths must be indistinguishable from the
//! from-scratch paths they replace.
//!
//! * [`ParamRollup`] under random add/remove/replace sequences must match
//!   [`aggregate::average`] recomputed over the surviving contributions.
//! * A plane-enabled registry must make the same placement decisions (and
//!   return the same errors) as a plane-disabled registry fed the same
//!   operation sequence over an identical pool.

use jsym_net::{SimClock, TimeScale};
use jsym_sysmon::{
    aggregate, JsConstraints, LoadModel, LoadProfile, MachineSpec, ParamRollup, ParamValue,
    SimMachine, SysParam, SysSnapshot,
};
use jsym_vda::{Cluster, Node, PlaneConfig, ResourcePool, VdaRegistry};
use proptest::prelude::*;

// ------------------------------------------------- rollup vs. recompute

#[derive(Clone, Debug)]
enum RollupOp {
    /// Add a snapshot: (load‰, mem MB, timestamp, string variant 0..3).
    Add(u16, u16, u8, u8),
    /// Remove the contribution at index `i % len`.
    Remove(u8),
    /// Replace the contribution at index `i % len` with a fresh sample.
    Replace(u8, u16, u16),
}

fn arb_rollup_op() -> impl Strategy<Value = RollupOp> {
    prop_oneof![
        (0u16..1000, 0u16..512, any::<u8>(), 0u8..3)
            .prop_map(|(l, m, at, s)| RollupOp::Add(l, m, at, s)),
        any::<u8>().prop_map(RollupOp::Remove),
        (any::<u8>(), 0u16..1000, 0u16..512).prop_map(|(i, l, m)| RollupOp::Replace(i, l, m)),
    ]
}

fn make_snap(load: u16, mem: u16, at: u8, string_variant: u8) -> SysSnapshot {
    let mut snap = SysSnapshot::empty(at as f64);
    snap.set(SysParam::CpuLoad1, load as f64 / 1000.0);
    snap.set(SysParam::AvailMem, mem as f64);
    match string_variant {
        0 => snap.set(SysParam::OsName, "linux"),
        1 => snap.set(SysParam::OsName, "solaris"),
        _ => {} // no string param: exercises the full-coverage rule
    }
    snap
}

/// Numeric params within 1e-6 relative, string params exactly equal, and the
/// same key set on both sides. `at` is excluded: the rollup keeps a
/// high-water mark while `average` uses the max over survivors.
fn assert_matches_average(rollup: &ParamRollup, shadow: &[SysSnapshot]) -> TestCaseResult {
    let inc = rollup.to_snapshot();
    let full = aggregate::average(shadow);
    let inc_keys: Vec<SysParam> = inc.iter().map(|(&p, _)| p).collect();
    let full_keys: Vec<SysParam> = full.iter().map(|(&p, _)| p).collect();
    prop_assert_eq!(inc_keys, full_keys, "param key sets diverged");
    for (&param, value) in full.iter() {
        match value {
            ParamValue::Num(want) => {
                let got = inc.num(param).unwrap();
                let tol = 1e-6 * want.abs().max(1.0);
                prop_assert!(
                    (got - want).abs() <= tol,
                    "{param:?}: incremental {got} vs recomputed {want}"
                );
            }
            ParamValue::Str(want) => {
                prop_assert_eq!(inc.str(param), Some(want.as_str()), "{:?}", param);
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn incremental_rollup_matches_recompute(ops in proptest::collection::vec(arb_rollup_op(), 1..80)) {
        let mut rollup = ParamRollup::new();
        let mut shadow: Vec<SysSnapshot> = Vec::new();
        for op in &ops {
            match *op {
                RollupOp::Add(l, m, at, s) => {
                    let snap = make_snap(l, m, at, s);
                    rollup.add(&snap);
                    shadow.push(snap);
                }
                RollupOp::Remove(i) => {
                    if !shadow.is_empty() {
                        let snap = shadow.remove(i as usize % shadow.len());
                        rollup.remove(&snap);
                    }
                }
                RollupOp::Replace(i, l, m) => {
                    if !shadow.is_empty() {
                        let idx = i as usize % shadow.len();
                        let fresh = make_snap(l, m, 200, 2);
                        rollup.replace(&shadow[idx], &fresh);
                        shadow[idx] = fresh;
                    }
                }
            }
            prop_assert_eq!(rollup.len(), shadow.len());
            assert_matches_average(&rollup, &shadow)?;
        }
    }
}

// --------------------------------------------- fast path vs. slow path

#[derive(Clone, Debug)]
enum PlaceOp {
    /// Unconstrained single-node allocation.
    Any,
    /// Allocation constrained to CpuLoad1 <= x/100.
    Constrained(u8),
    /// Cluster of `n` nodes, optionally constrained.
    Many(u8, Option<u8>),
    /// Free the node pair at index `i % len`.
    FreeNode(u8),
    /// Free the cluster pair at index `i % len`.
    FreeCluster(u8),
}

fn arb_place_op() -> impl Strategy<Value = PlaceOp> {
    prop_oneof![
        Just(PlaceOp::Any),
        (0u8..100).prop_map(PlaceOp::Constrained),
        (1u8..5, prop_oneof![Just(None), (0u8..100).prop_map(Some)])
            .prop_map(|(n, c)| PlaceOp::Many(n, c)),
        any::<u8>().prop_map(PlaceOp::FreeNode),
        any::<u8>().prop_map(PlaceOp::FreeCluster),
    ]
}

/// Two registries over identically built pools sharing one effectively
/// frozen clock (1e9 real seconds per virtual second), so both sides see
/// bit-identical samples.
fn twin_registries(loads: &[u8]) -> (VdaRegistry, VdaRegistry) {
    let clock = SimClock::new(TimeScale::new(1e9));
    let build = |clock: &SimClock| {
        let pool = ResourcePool::new();
        for (i, &l) in loads.iter().enumerate() {
            pool.add_machine(SimMachine::new(
                MachineSpec::generic(&format!("m{i}"), 25.0 + i as f64, 128.0),
                LoadModel::new(LoadProfile::Constant(l as f64 / 100.0), i as u64),
                clock.clone(),
            ));
        }
        pool
    };
    let fast = VdaRegistry::new(build(&clock));
    fast.set_plane_config(PlaneConfig {
        enabled: true,
        ttl: 60.0,
        dirty_threshold: 0.0,
    });
    let slow = VdaRegistry::new(build(&clock));
    (fast, slow)
}

fn load_constraint(pct: u8) -> JsConstraints {
    let mut c = JsConstraints::new();
    c.set(SysParam::CpuLoad1, "<=", pct as f64 / 100.0);
    c
}

/// Collapses a placement outcome to its observable decision: machine names
/// on success, the error (including its payload) on failure.
fn node_decision(r: Result<Node, jsym_vda::VdaError>) -> Result<(String, Node), String> {
    match r {
        Ok(n) => {
            let name = n.name().expect("fresh node has a name");
            Ok((name, n))
        }
        Err(e) => Err(format!("{e:?}")),
    }
}

fn cluster_decision(
    r: Result<Cluster, jsym_vda::VdaError>,
    reg: &VdaRegistry,
) -> Result<(Vec<String>, Cluster), String> {
    match r {
        Ok(c) => {
            let names = c
                .machines()
                .into_iter()
                .map(|id| {
                    let m = reg.pool().machine(id).expect("live machine");
                    m.spec().name.clone()
                })
                .collect();
            Ok((names, c))
        }
        Err(e) => Err(format!("{e:?}")),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fast_path_matches_slow_path(
        loads in proptest::collection::vec(0u8..95, 4..24),
        ops in proptest::collection::vec(arb_place_op(), 1..40),
    ) {
        let (fast, slow) = twin_registries(&loads);
        let mut nodes: Vec<(Node, Node)> = Vec::new();
        let mut clusters: Vec<(Cluster, Cluster)> = Vec::new();
        for op in &ops {
            match *op {
                PlaceOp::Any => {
                    let f = node_decision(fast.request_node());
                    let s = node_decision(slow.request_node());
                    match (f, s) {
                        (Ok((fname, fnode)), Ok((sname, snode))) => {
                            prop_assert_eq!(fname, sname, "unconstrained pick diverged");
                            nodes.push((fnode, snode));
                        }
                        (Err(fe), Err(se)) => prop_assert_eq!(fe, se),
                        (f, s) => {
                            return Err(TestCaseError::fail(format!(
                                "outcome diverged: fast {f:?} vs slow {s:?}"
                            )));
                        }
                    }
                }
                PlaceOp::Constrained(pct) => {
                    let c = load_constraint(pct);
                    let f = node_decision(fast.request_node_constrained(&c));
                    let s = node_decision(slow.request_node_constrained(&c));
                    match (f, s) {
                        (Ok((fname, fnode)), Ok((sname, snode))) => {
                            prop_assert_eq!(fname, sname, "constrained pick diverged");
                            nodes.push((fnode, snode));
                        }
                        (Err(fe), Err(se)) => prop_assert_eq!(fe, se),
                        (f, s) => {
                            return Err(TestCaseError::fail(format!(
                                "outcome diverged: fast {f:?} vs slow {s:?}"
                            )));
                        }
                    }
                }
                PlaceOp::Many(n, pct) => {
                    let c = pct.map(load_constraint);
                    let f = cluster_decision(fast.request_cluster(n as usize, c.as_ref()), &fast);
                    let s = cluster_decision(slow.request_cluster(n as usize, c.as_ref()), &slow);
                    match (f, s) {
                        (Ok((fnames, fc)), Ok((snames, sc))) => {
                            prop_assert_eq!(fnames, snames, "cluster membership diverged");
                            clusters.push((fc, sc));
                        }
                        (Err(fe), Err(se)) => prop_assert_eq!(fe, se),
                        (f, s) => {
                            return Err(TestCaseError::fail(format!(
                                "outcome diverged: fast {f:?} vs slow {s:?}"
                            )));
                        }
                    }
                }
                PlaceOp::FreeNode(i) => {
                    if !nodes.is_empty() {
                        let (f, s) = &nodes[i as usize % nodes.len()];
                        prop_assert_eq!(f.free().is_ok(), s.free().is_ok());
                    }
                }
                PlaceOp::FreeCluster(i) => {
                    if !clusters.is_empty() {
                        let (f, s) = &clusters[i as usize % clusters.len()];
                        prop_assert_eq!(f.free().is_ok(), s.free().is_ok());
                    }
                }
            }
        }
        // The dirty scan must agree with the full scan at the end of the run.
        let dirty = fast.scan_violations(true);
        let full = fast.scan_violations(false);
        prop_assert_eq!(dirty.violations, full.violations);
    }
}
