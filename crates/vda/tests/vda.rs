//! Behavioural tests for virtual distributed architectures, following the
//! paper's §4.2 code skeletons.

use jsym_net::SimClock;
use jsym_sysmon::{JsConstraints, LoadModel, LoadProfile, MachineSpec, SimMachine, SysParam};
use jsym_vda::{ManagerScope, ResourcePool, VdaError, VdaEvent, VdaRegistry};

/// A pool of `n` machines named m0..m(n-1), with configurable loads.
fn pool_with(loads: &[f64]) -> ResourcePool {
    let pool = ResourcePool::new();
    let clock = SimClock::default();
    for (i, &load) in loads.iter().enumerate() {
        pool.add_machine(SimMachine::new(
            MachineSpec::generic(&format!("m{i}"), 10.0 + i as f64, 256.0),
            LoadModel::new(LoadProfile::Constant(load), i as u64),
            clock.clone(),
        ));
    }
    pool
}

fn registry(n: usize) -> VdaRegistry {
    VdaRegistry::new(pool_with(&vec![0.1; n]))
}

// ------------------------------------------------------------------- nodes

#[test]
fn request_any_node_prefers_low_load() {
    let reg = VdaRegistry::new(pool_with(&[0.8, 0.05, 0.5]));
    let n = reg.request_node().unwrap();
    assert_eq!(n.name().unwrap(), "m1");
}

#[test]
fn request_node_by_name() {
    let reg = registry(3);
    let n = reg.request_node_named("m2").unwrap();
    assert_eq!(n.name().unwrap(), "m2");
    assert!(matches!(
        reg.request_node_named("nope"),
        Err(VdaError::NoSuchMachine(_))
    ));
}

#[test]
fn request_node_with_constraints() {
    let reg = VdaRegistry::new(pool_with(&[0.9, 0.9, 0.02]));
    let mut constr = JsConstraints::new();
    constr.set(SysParam::IdlePct, ">=", 50);
    let n = reg.request_node_constrained(&constr).unwrap();
    assert_eq!(n.name().unwrap(), "m2");
    // Now nothing satisfies the constraints any more.
    assert!(matches!(
        reg.request_node_constrained(&constr),
        Err(VdaError::ConstraintsUnsatisfied)
    ));
}

#[test]
fn node_has_implicit_cluster_site_domain() {
    let reg = registry(2);
    let n = reg.request_node().unwrap();
    let c = n.get_cluster().unwrap();
    let s = n.get_site().unwrap();
    let d = n.get_domain().unwrap();
    assert_eq!(c.nr_nodes(), 1);
    assert_eq!(s.nr_clusters(), 1);
    assert_eq!(d.nr_sites(), 1);
    // Idempotent: the same implicit parents are returned.
    assert_eq!(n.get_cluster().unwrap(), c);
    assert_eq!(n.get_site().unwrap(), s);
    assert_eq!(n.get_domain().unwrap(), d);
}

#[test]
fn freed_node_rejects_use() {
    let reg = registry(2);
    let n = reg.request_node().unwrap();
    n.free().unwrap();
    assert!(!n.is_live());
    assert!(matches!(n.free(), Err(VdaError::Freed(_))));
    assert!(matches!(n.get_cluster(), Err(VdaError::Freed(_))));
}

#[test]
fn freeing_releases_the_machine_for_reallocation() {
    let reg = registry(1);
    let n = reg.request_node().unwrap();
    assert!(matches!(
        reg.request_node(),
        Err(VdaError::InsufficientNodes { .. })
    ));
    n.free().unwrap();
    let again = reg.request_node().unwrap();
    assert_eq!(again.name().unwrap(), "m0");
}

#[test]
fn named_nodes_may_share_a_machine() {
    let reg = registry(1);
    let a = reg.request_node_named("m0").unwrap();
    let b = reg.request_node_named("m0").unwrap();
    assert_eq!(a.phys(), b.phys());
    assert_ne!(a, b);
}

#[test]
fn node_sys_params_and_constr_hold() {
    let reg = VdaRegistry::new(pool_with(&[0.05]));
    let n = reg.request_node().unwrap();
    let idle = n.get_sys_param(SysParam::IdlePct).unwrap();
    assert!(idle.as_num().unwrap() > 80.0);
    let mut constr = JsConstraints::new();
    constr.set(SysParam::IdlePct, ">=", 50);
    assert!(n.constr_hold(&constr).unwrap());
    let mut tight = JsConstraints::new();
    tight.set(SysParam::IdlePct, ">=", 99.5);
    assert!(!n.constr_hold(&tight).unwrap());
}

// ----------------------------------------------------------------- clusters

#[test]
fn request_cluster_of_n_nodes() {
    let reg = registry(6);
    let c = reg.request_cluster(5, None).unwrap();
    assert_eq!(c.nr_nodes(), 5);
    // Distinct machines.
    let mut phys = c.machines();
    phys.sort();
    phys.dedup();
    assert_eq!(phys.len(), 5);
}

#[test]
fn cluster_too_large_fails_atomically() {
    let reg = registry(3);
    assert!(matches!(
        reg.request_cluster(5, None),
        Err(VdaError::InsufficientNodes {
            requested: 5,
            available: 3
        })
    ));
    // Nothing leaked: a 3-node cluster still fits.
    assert!(reg.request_cluster(3, None).is_ok());
}

#[test]
fn individual_cluster_from_nodes() {
    let reg = registry(4);
    let n1 = reg.request_node().unwrap();
    let n2 = reg.request_node().unwrap();
    let n3 = reg.request_node().unwrap();
    let c = reg.empty_cluster();
    c.add_node(&n1).unwrap();
    c.add_node(&n2).unwrap();
    c.add_node(&n3).unwrap();
    assert_eq!(c.nr_nodes(), 3);
    // freeNode(n2) by handle.
    c.free_node(&n2).unwrap();
    assert_eq!(c.nr_nodes(), 2);
    // freeNode(0) by index — removes n1, leaving n3.
    c.free_node_at(0).unwrap();
    assert_eq!(c.nr_nodes(), 1);
    assert_eq!(c.get_node(0).unwrap(), n3);
}

#[test]
fn node_cannot_join_two_clusters() {
    let reg = registry(2);
    let n = reg.request_node().unwrap();
    let c1 = reg.empty_cluster();
    let c2 = reg.empty_cluster();
    c1.add_node(&n).unwrap();
    assert!(matches!(c2.add_node(&n), Err(VdaError::AlreadyAttached(_))));
}

#[test]
fn cluster_indexing_matches_paper_bounds() {
    let reg = registry(3);
    let c = reg.request_cluster(3, None).unwrap();
    assert!(c.get_node(0).is_ok());
    assert!(c.get_node(2).is_ok());
    assert!(matches!(
        c.get_node(3),
        Err(VdaError::IndexOutOfRange { what: "node", .. })
    ));
}

#[test]
fn free_cluster_releases_all_nodes() {
    let reg = registry(3);
    let c = reg.request_cluster(3, None).unwrap();
    let n0 = c.get_node(0).unwrap();
    c.free().unwrap();
    assert!(!c.is_live());
    assert!(!n0.is_live());
    // All machines are available again.
    assert!(reg.request_cluster(3, None).is_ok());
}

#[test]
fn cluster_snapshot_is_average() {
    let reg = VdaRegistry::new(pool_with(&[0.0, 0.4]));
    let c = reg.request_cluster(2, None).unwrap();
    let snap = c.snapshot().unwrap();
    let idle = snap.num(SysParam::IdlePct).unwrap();
    // Node idles ~98 and ~55.6 → average ~77.
    assert!((60.0..95.0).contains(&idle), "idle {idle}");
}

// -------------------------------------------------------------------- sites

#[test]
fn request_site_with_cluster_shape() {
    let reg = registry(11);
    let s = reg.request_site(&[2, 4, 5], None).unwrap();
    assert_eq!(s.nr_clusters(), 3);
    assert_eq!(s.nr_nodes(), 11);
    assert_eq!(s.get_cluster(1).unwrap().nr_nodes(), 4);
    // Both navigation alternatives from the paper reach the same node.
    let a = s.get_cluster(2).unwrap().get_node(1).unwrap();
    let b = s.get_node(2, 1).unwrap();
    assert_eq!(a, b);
}

#[test]
fn individual_site_from_clusters() {
    let reg = registry(5);
    let c1 = reg.request_cluster(2, None).unwrap();
    let c2 = reg.request_cluster(3, None).unwrap();
    let s = reg.empty_site();
    s.add_cluster(&c1).unwrap();
    s.add_cluster(&c2).unwrap();
    assert_eq!(s.nr_clusters(), 2);
    assert_eq!(s.nr_nodes(), 5);
    // freeCluster by handle and by index.
    s.free_cluster(&c2).unwrap();
    assert_eq!(s.nr_clusters(), 1);
    s.free_cluster_at(0).unwrap();
    assert_eq!(s.nr_clusters(), 0);
    assert!(!c1.is_live());
}

#[test]
fn site_free_node_by_path() {
    let reg = registry(6);
    let s = reg.request_site(&[3, 3], None).unwrap();
    s.free_node(1, 2).unwrap();
    assert_eq!(s.nr_nodes(), 5);
    assert_eq!(s.get_cluster(1).unwrap().nr_nodes(), 2);
}

#[test]
fn free_site_cascades() {
    let reg = registry(4);
    let s = reg.request_site(&[2, 2], None).unwrap();
    let c0 = s.get_cluster(0).unwrap();
    s.free().unwrap();
    assert!(!s.is_live());
    assert!(!c0.is_live());
    assert!(reg.request_cluster(4, None).is_ok());
}

// ------------------------------------------------------------------ domains

#[test]
fn request_domain_with_shapes() {
    let reg = registry(19);
    let d = reg.request_domain(&[&[1, 3, 5], &[6, 4]], None).unwrap();
    assert_eq!(d.nr_sites(), 2);
    assert_eq!(d.nr_clusters(), 5);
    assert_eq!(d.nr_nodes(), 19);
    // Paper's two navigation alternatives.
    let a = d
        .get_site(0)
        .unwrap()
        .get_cluster(1)
        .unwrap()
        .get_node(2)
        .unwrap();
    let b = d.get_node(0, 1, 2).unwrap();
    assert_eq!(a, b);
}

#[test]
fn domain_partial_frees() {
    let reg = registry(8);
    let d = reg.request_domain(&[&[2, 2], &[4]], None).unwrap();
    d.free_node(0, 1, 0).unwrap();
    assert_eq!(d.nr_nodes(), 7);
    d.free_cluster(0, 1).unwrap();
    assert_eq!(d.nr_clusters(), 2);
    assert_eq!(d.nr_nodes(), 6);
    d.free_site_at(1).unwrap();
    assert_eq!(d.nr_sites(), 1);
    assert_eq!(d.nr_nodes(), 2);
    d.free().unwrap();
    assert!(!d.is_live());
    assert_eq!(reg.pool().len(), 8);
    assert!(reg.request_cluster(8, None).is_ok());
}

#[test]
fn individual_domain_from_sites() {
    let reg = registry(6);
    let s1 = reg.request_site(&[2], None).unwrap();
    let s2 = reg.request_site(&[1, 2], None).unwrap();
    let d = reg.empty_domain();
    d.add_site(&s1).unwrap();
    d.add_site(&s2).unwrap();
    assert_eq!(d.nr_sites(), 2);
    assert_eq!(d.nr_nodes(), 5);
    d.free_site(&s1).unwrap();
    assert_eq!(d.nr_sites(), 1);
}

#[test]
fn constrained_domain_rejects_busy_pool() {
    // 4 idle + 4 busy machines; an 8-node idle-constrained domain must fail,
    // a 4-node one succeed.
    let reg = VdaRegistry::new(pool_with(&[0.01, 0.01, 0.01, 0.01, 0.9, 0.9, 0.9, 0.9]));
    let mut constr = JsConstraints::new();
    constr.set(SysParam::IdlePct, ">=", 60);
    assert!(reg.request_domain(&[&[4, 4]], Some(&constr)).is_err());
    let d = reg.request_domain(&[&[2, 2]], Some(&constr)).unwrap();
    assert_eq!(d.nr_nodes(), 4);
}

// ----------------------------------------------------------------- managers

#[test]
fn managers_follow_promotion_rule() {
    let reg = registry(9);
    let d = reg.request_domain(&[&[2, 2], &[3, 2]], None).unwrap();
    let dm = d.manager().expect("domain has a manager");
    // The domain manager must manage some site, which must manage some
    // cluster it belongs to.
    let mut found = false;
    for si in 0..d.nr_sites() {
        let site = d.get_site(si).unwrap();
        let sm = site.manager().expect("site has a manager");
        // Site manager is one of its cluster managers.
        let mut site_ok = false;
        for ci in 0..site.nr_clusters() {
            let cluster = site.get_cluster(ci).unwrap();
            let cm = cluster.manager().expect("cluster has a manager");
            // Cluster manager is a member of the cluster.
            let members: Vec<_> = (0..cluster.nr_nodes())
                .map(|i| cluster.get_node(i).unwrap())
                .collect();
            assert!(members.contains(&cm), "cluster manager not a member");
            if cm == sm {
                site_ok = true;
            }
        }
        assert!(site_ok, "site manager is not one of its cluster managers");
        if sm == dm {
            found = true;
        }
    }
    assert!(found, "domain manager is not one of its site managers");
}

#[test]
fn freeing_manager_elects_replacement() {
    let reg = registry(3);
    let c = reg.request_cluster(3, None).unwrap();
    let m = c.manager().unwrap();
    let backup = c.backup_manager().unwrap();
    assert_ne!(m, backup);
    c.free_node(&m).unwrap();
    let new_m = c.manager().unwrap();
    assert_eq!(new_m, backup, "backup should take over");
    assert_ne!(c.backup_manager().unwrap(), new_m);
}

#[test]
fn single_node_cluster_has_manager_but_no_backup() {
    let reg = registry(1);
    let c = reg.request_cluster(1, None).unwrap();
    assert!(c.manager().is_some());
    assert!(c.backup_manager().is_none());
}

// ------------------------------------------------------------------ failure

#[test]
fn failure_releases_nodes_and_fails_over_managers() {
    let reg = registry(4);
    let events = reg.subscribe();
    let c = reg.request_cluster(4, None).unwrap();
    let manager = c.manager().unwrap();
    let backup = c.backup_manager().unwrap();
    let dead_phys = manager.phys();

    reg.handle_phys_failure(dead_phys);
    assert!(reg.is_failed(dead_phys));
    assert_eq!(c.nr_nodes(), 3);
    assert!(!manager.is_live());
    assert_eq!(c.manager().unwrap(), backup);

    // Events: ... NodeFailed, ManagerChanged(takeover), NodeFreed ...
    let collected: Vec<_> = events.try_iter().collect();
    assert!(collected
        .iter()
        .any(|e| matches!(e, VdaEvent::NodeFailed { phys } if *phys == dead_phys)));
    assert!(collected.iter().any(|e| matches!(
        e,
        VdaEvent::ManagerChanged {
            scope: ManagerScope::Cluster(_),
            takeover: true,
            ..
        }
    )));
    assert!(collected
        .iter()
        .any(|e| matches!(e, VdaEvent::NodeFreed { phys, .. } if *phys == dead_phys)));
}

#[test]
fn failed_machine_is_not_reallocated() {
    let reg = registry(2);
    reg.handle_phys_failure(reg.pool().ids()[0]);
    let n = reg.request_node().unwrap();
    assert_eq!(n.name().unwrap(), "m1");
    assert!(matches!(
        reg.request_node(),
        Err(VdaError::InsufficientNodes { .. })
    ));
}

#[test]
fn non_manager_failure_keeps_manager() {
    let reg = registry(3);
    let c = reg.request_cluster(3, None).unwrap();
    let manager = c.manager().unwrap();
    // Fail a non-manager member.
    let victim = (0..3)
        .map(|i| c.get_node(i).unwrap())
        .find(|n| *n != manager && Some(n.clone()) != c.backup_manager())
        .unwrap();
    reg.handle_phys_failure(victim.phys());
    assert_eq!(c.nr_nodes(), 2);
    assert_eq!(c.manager().unwrap(), manager);
}

// --------------------------------------------------------------- violations

#[test]
fn violating_nodes_reports_constraint_breaches() {
    let clock = SimClock::default();
    let pool = ResourcePool::new();
    // One machine whose load spikes after t=0 (it is always in spike for
    // virtual time > 0 here), one forever idle.
    pool.add_machine(SimMachine::new(
        MachineSpec::generic("spiky", 10.0, 256.0),
        LoadModel::new(
            LoadProfile::Spike {
                base: 0.0,
                level: 0.9,
                start: 0.0,
                end: 1e12,
            },
            0,
        ),
        clock.clone(),
    ));
    pool.add_machine(SimMachine::new(
        MachineSpec::generic("calm", 10.0, 256.0),
        LoadModel::new(LoadProfile::Idle, 0),
        clock.clone(),
    ));
    let reg = VdaRegistry::new(pool);
    let mut constr = JsConstraints::new();
    constr.set(SysParam::IdlePct, ">=", 50);
    // Request by name so the constraint is attached but violated.
    let spiky = reg.request_node_named("spiky").unwrap();
    let cluster = reg.empty_cluster();
    cluster.add_node(&spiky).unwrap();
    // Attach constraints via a constrained cluster request for the calm one.
    let calm = reg.request_node_constrained(&constr).unwrap();
    assert_eq!(calm.name().unwrap(), "calm");

    let violations = reg.violating_nodes();
    // calm satisfies its constraints; spiky has none attached (named request),
    // so nothing is reported yet.
    assert!(violations.is_empty());
}

#[test]
fn locality_candidates_are_ordered_cluster_site_domain() {
    let reg = registry(7);
    let d = reg.request_domain(&[&[2, 2], &[3]], None).unwrap();
    let node = d.get_node(0, 0, 0).unwrap();
    let cands = reg.locality_candidates(&node);
    assert_eq!(cands.len(), 6, "all other domain machines are candidates");
    // First candidate: the cluster peer.
    let cluster_peer = d.get_node(0, 0, 1).unwrap().phys();
    assert_eq!(cands[0], cluster_peer);
    // Next two: the same-site second cluster.
    let site_machines: Vec<_> = (0..2)
        .map(|i| d.get_node(0, 1, i).unwrap().phys())
        .collect();
    assert!(site_machines.contains(&cands[1]));
    assert!(site_machines.contains(&cands[2]));
    // Last three: the remote site.
    let remote: Vec<_> = (0..3)
        .map(|i| d.get_node(1, 0, i).unwrap().phys())
        .collect();
    for c in &cands[3..] {
        assert!(remote.contains(c));
    }
}

#[test]
fn events_fire_for_allocation_and_free() {
    let reg = registry(2);
    let events = reg.subscribe();
    let n = reg.request_node().unwrap();
    n.free().unwrap();
    let got: Vec<_> = events.try_iter().collect();
    assert!(got
        .iter()
        .any(|e| matches!(e, VdaEvent::NodeAllocated { .. })));
    assert!(got.iter().any(|e| matches!(e, VdaEvent::NodeFreed { .. })));
}

// ------------------------------------------------------------ monitor view

#[test]
fn monitor_view_wires_members_to_managers() {
    let reg = registry(4);
    let cluster = reg.request_cluster(4, None).unwrap();
    let mgr = cluster.manager().unwrap().phys();
    for i in 0..4 {
        let node = cluster.get_node(i).unwrap().phys();
        let view = reg.monitor_view(node);
        if node == mgr {
            // The manager aggregates the cluster and expects everyone.
            assert_eq!(view.aggregates.len(), 1);
            assert_eq!(view.aggregates[0].1.len(), 4);
            assert_eq!(view.expects_from.len(), 3);
            assert!(view.report_to.is_empty(), "no site above this cluster");
        } else {
            // Members report to (and expect heartbeats from) the manager.
            assert_eq!(view.report_to, vec![mgr]);
            assert_eq!(view.expects_from, vec![mgr]);
            assert!(view.aggregates.is_empty());
        }
    }
    reg.pool()
        .ids()
        .iter()
        .filter(|id| !cluster.machines().contains(id))
        .for_each(|&id| assert!(reg.monitor_view(id).is_empty()));
}

#[test]
fn monitor_view_spans_the_hierarchy() {
    let reg = registry(6);
    let domain = reg.request_domain(&[&[2, 2], &[2]], None).unwrap();
    let dm = domain.manager().unwrap().phys();
    let dm_view = reg.monitor_view(dm);
    // The domain manager aggregates its cluster, its site and the domain.
    assert!(
        dm_view.aggregates.len() >= 3,
        "domain manager should hold cluster+site+domain aggregates: {:?}",
        dm_view
            .aggregates
            .iter()
            .map(|(l, _)| l)
            .collect::<Vec<_>>()
    );
    let domain_agg = dm_view
        .aggregates
        .iter()
        .find(|(l, _)| l.starts_with("vd"))
        .expect("domain aggregate");
    assert_eq!(domain_agg.1.len(), 6);

    // A site manager that is not the domain manager reports upward to it.
    let other_site_mgr = domain.get_site(1).unwrap().manager().unwrap().phys();
    if other_site_mgr != dm {
        let view = reg.monitor_view(other_site_mgr);
        assert!(view.report_to.contains(&dm));
        assert!(view.expects_from.contains(&dm));
    }
}

#[test]
fn monitor_view_updates_after_failover() {
    let reg = registry(3);
    let cluster = reg.request_cluster(3, None).unwrap();
    let mgr = cluster.manager().unwrap();
    let backup = cluster.backup_manager().unwrap();
    reg.handle_phys_failure(mgr.phys());
    // The promoted backup now aggregates; the dead machine has no view.
    let view = reg.monitor_view(backup.phys());
    assert_eq!(view.aggregates.len(), 1);
    assert_eq!(view.aggregates[0].1.len(), 2);
    assert!(reg.monitor_view(mgr.phys()).is_empty());
}

#[test]
fn site_and_domain_backups_are_valid_managers() {
    let reg = registry(8);
    let domain = reg.request_domain(&[&[2, 2], &[2, 2]], None).unwrap();
    // Site backups must be cluster managers of the same site.
    for si in 0..domain.nr_sites() {
        let site = domain.get_site(si).unwrap();
        if let Some(backup) = site.backup_manager() {
            let cluster_mgrs: Vec<_> = (0..site.nr_clusters())
                .filter_map(|ci| site.get_cluster(ci).unwrap().manager())
                .collect();
            assert!(cluster_mgrs.contains(&backup));
            assert_ne!(Some(backup), site.manager());
        }
    }
    // Domain backup must be a site manager and distinct from the manager.
    if let Some(backup) = domain.backup_manager() {
        let site_mgrs: Vec<_> = (0..domain.nr_sites())
            .filter_map(|si| domain.get_site(si).unwrap().manager())
            .collect();
        assert!(site_mgrs.contains(&backup));
        assert_ne!(Some(backup), domain.manager());
    }
}

// ----------------------------------------- aggregation plane teardown

use jsym_net::TimeScale;
use jsym_vda::PlaneConfig;

/// Pool on an effectively frozen clock (1e9 real seconds per virtual
/// second), so cached and fresh samples are bit-identical.
fn frozen_pool(loads: &[f64]) -> jsym_vda::ResourcePool {
    let pool = jsym_vda::ResourcePool::new();
    let clock = SimClock::new(TimeScale::new(1e9));
    for (i, &load) in loads.iter().enumerate() {
        pool.add_machine(SimMachine::new(
            MachineSpec::generic(&format!("m{i}"), 10.0 + i as f64, 256.0),
            LoadModel::new(LoadProfile::Constant(load), i as u64),
            clock.clone(),
        ));
    }
    pool
}

fn plane_registry(n: usize) -> VdaRegistry {
    let reg = VdaRegistry::new(frozen_pool(&vec![0.1; n]));
    reg.set_plane_config(PlaneConfig {
        enabled: true,
        ttl: 60.0,
        dirty_threshold: 0.0,
    });
    reg
}

#[test]
fn free_node_evicts_plane_entries() {
    let reg = plane_registry(4);
    let n = reg.request_node().unwrap();
    // A bare node joins the rollups once its implicit cluster materializes.
    n.get_cluster().unwrap();
    assert_eq!(reg.plane_stats().tracked, 1);
    n.free().unwrap();
    let stats = reg.plane_stats();
    assert_eq!(stats.tracked, 0, "freed node left a rollup contribution");
    assert_eq!(stats.dirty, 0, "freed node left a dirty mark");
    // The machine is placeable again: four singles must all succeed.
    for _ in 0..4 {
        reg.request_node().unwrap();
    }
}

#[test]
fn free_cluster_evicts_plane_entries() {
    let reg = plane_registry(6);
    let c = reg.request_cluster(4, None).unwrap();
    assert_eq!(reg.plane_stats().tracked, 4);
    c.free().unwrap();
    let stats = reg.plane_stats();
    assert_eq!(stats.tracked, 0);
    assert_eq!(stats.dirty, 0);
    // All six machines are back in the placement index.
    let again = reg.request_cluster(6, None).unwrap();
    assert_eq!(again.nr_nodes(), 6);
}

#[test]
fn free_site_evicts_plane_entries() {
    let reg = plane_registry(6);
    let s = reg.request_site(&[2, 2], None).unwrap();
    assert_eq!(reg.plane_stats().tracked, 4);
    // Site aggregates come from the incremental rollup while the plane is on.
    assert!(!s.snapshot().unwrap().is_empty());
    s.free().unwrap();
    let stats = reg.plane_stats();
    assert_eq!(stats.tracked, 0, "freed site left rollup contributions");
    assert_eq!(stats.dirty, 0);
    let again = reg.request_cluster(6, None).unwrap();
    assert_eq!(again.nr_nodes(), 6);
}

#[test]
fn phys_failure_invalidates_cached_sample() {
    // m0 has by far the lowest load, so it is always the first pick.
    let reg = VdaRegistry::new(frozen_pool(&[0.01, 0.4, 0.5]));
    reg.set_plane_config(PlaneConfig {
        enabled: true,
        ttl: 60.0,
        dirty_threshold: 0.0,
    });
    let n = reg.request_node().unwrap();
    assert_eq!(n.name().unwrap(), "m0");
    let phys = n.phys();
    reg.handle_phys_failure(phys);
    let stats = reg.plane_stats();
    assert!(
        stats.invalidations >= 1,
        "failure must evict the cached sample"
    );
    // The failed machine must never be handed out again.
    let next = reg.request_node().unwrap();
    assert_eq!(next.name().unwrap(), "m1");
    let last = reg.request_node().unwrap();
    assert_eq!(last.name().unwrap(), "m2");
    assert!(reg.request_node().is_err());
}

#[test]
fn component_snapshot_matches_uncached_while_plane_on() {
    let reg = plane_registry(5);
    let c = reg.request_cluster(3, None).unwrap();
    let cached = c.snapshot().unwrap();
    let uncached = c.snapshot_uncached().unwrap();
    for (&param, value) in uncached.iter() {
        match value {
            jsym_sysmon::ParamValue::Num(want) => {
                let got = cached.num(param).unwrap();
                assert!(
                    (got - want).abs() <= 1e-6 * want.abs().max(1.0),
                    "{param:?}: cached {got} vs uncached {want}"
                );
            }
            jsym_sysmon::ParamValue::Str(want) => {
                assert_eq!(cached.str(param), Some(want.as_str()));
            }
        }
    }
}
