//! The `jsym-shell` REPL: administer a simulated JavaSymphony deployment.
//!
//! ```text
//! jsym-shell [nodes] [day|night|dedicated] [time-scale] [--batch] [--executor N]
//! ```
//!
//! Boots the CLUSTER 2000 testbed (first `nodes` machines, default 6) under
//! the chosen load regime and reads commands from stdin; `help` lists them.
//! `--batch` arms the send-side RMI coalescing stage (fig5's defaults), so
//! the `batch` command has live counters to show. `--executor N` runs the
//! deployment on an N-worker work-stealing executor instead of the
//! thread-per-node runtime; the `executor` command shows its counters.

use jsym_cluster::catalog::{testbed_machines, LoadKind};
use jsym_cluster::jacobi::register_jacobi_classes;
use jsym_cluster::matmul::register_matmul_classes;
use jsym_cluster::pipeline::register_pipeline_classes;
use jsym_core::testkit::register_test_classes;
use jsym_core::JsShell;
use jsym_shell::ShellSession;
use std::io::{BufRead, Write};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let batching = args.iter().any(|a| a == "--batch");
    args.retain(|a| a != "--batch");
    let executor: usize = args
        .iter()
        .position(|a| a == "--executor")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    if let Some(i) = args.iter().position(|a| a == "--executor") {
        args.drain(i..(i + 2).min(args.len()));
    }
    let nodes: usize = args
        .first()
        .and_then(|s| s.parse().ok())
        .unwrap_or(6)
        .clamp(1, 13);
    let load = match args.get(1).map(String::as_str) {
        Some("day") => LoadKind::Day,
        Some("dedicated") => LoadKind::Dedicated,
        _ => LoadKind::Night,
    };
    let scale: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1e-3);

    let mut shell = JsShell::new()
        .time_scale(scale)
        .monitor_period(5.0)
        .failure_timeout(30.0)
        .add_machines(testbed_machines(nodes, load, 2026));
    if batching {
        shell = shell.rmi_batching(5e-4, 256 * 1024);
    }
    if executor > 0 {
        shell = shell.executor(executor);
    }
    let deployment = shell.boot();
    register_test_classes(&deployment);
    register_matmul_classes(&deployment);
    register_pipeline_classes(&deployment);
    register_jacobi_classes(&deployment);

    println!(
        "jsym-shell: {nodes} testbed machines under {} load (1 virtual s = {scale} real s{}{})",
        load.label(),
        if batching { ", RMI batching on" } else { "" },
        if executor > 0 {
            format!(", {executor}-worker executor")
        } else {
            String::new()
        }
    );
    println!("classes: Counter, Blob (blob.jar), Matrix, Stage, JacobiWorker; `help` for commands");

    let mut session = match ShellSession::new(deployment.clone()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot open session: {e}");
            return;
        }
    };
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    loop {
        print!("jsym> ");
        let _ = stdout.flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) | Err(_) => break, // EOF
            Ok(_) => {}
        }
        if line.trim().is_empty() {
            continue;
        }
        println!("{}", session.run_line(&line));
        if session.finished {
            break;
        }
    }
    deployment.shutdown();
}
