//! Executing shell commands against a live deployment.

use crate::command::{Command, HELP};
use jsym_core::{
    Deployment, JsCodebase, JsObj, JsRegistration, MachineConfig, MigrateTarget, Placement, Value,
};
use jsym_net::NodeId;
use jsym_sysmon::SysParam;
use jsym_vda::Cluster;
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;

/// An interactive administration session over one deployment.
///
/// Holds an administrative application registration (objects created from
/// the shell belong to it), the label → object table, requested clusters and
/// shipped codebases.
pub struct ShellSession {
    deployment: Deployment,
    reg: JsRegistration,
    objects: BTreeMap<String, JsObj>,
    clusters: Vec<Cluster>,
    codebases: Vec<JsCodebase>,
    next_obj: u32,
    /// Set once `quit` has been executed.
    pub finished: bool,
}

impl ShellSession {
    /// Opens a session on `deployment` (registers the admin application).
    pub fn new(deployment: Deployment) -> jsym_core::Result<Self> {
        let reg = deployment.register_app()?;
        Ok(ShellSession {
            deployment,
            reg,
            objects: BTreeMap::new(),
            clusters: Vec::new(),
            codebases: Vec::new(),
            next_obj: 1,
            finished: false,
        })
    }

    /// The deployment this session administers.
    pub fn deployment(&self) -> &Deployment {
        &self.deployment
    }

    fn node_by_name(&self, name: &str) -> Result<NodeId, String> {
        self.deployment
            .pool()
            .by_name(name)
            .map(|(id, _)| id)
            .map_err(|e| e.to_string())
    }

    fn object(&self, label: &str) -> Result<&JsObj, String> {
        self.objects
            .get(label)
            .ok_or_else(|| format!("no object labelled {label:?}; see `objects`"))
    }

    /// Parses and executes one line.
    pub fn run_line(&mut self, line: &str) -> String {
        match Command::parse(line) {
            Ok(cmd) => self.execute(cmd).unwrap_or_else(|e| format!("error: {e}")),
            Err(e) => format!("error: {e}"),
        }
    }

    /// Executes a parsed command, returning its printable output.
    pub fn execute(&mut self, cmd: Command) -> Result<String, String> {
        match cmd {
            Command::Help => Ok(HELP.to_owned()),
            Command::Quit => {
                self.finished = true;
                Ok("bye".to_owned())
            }
            Command::Nodes => {
                let mut out = format!(
                    "{:<4} {:<10} {:<22} {:>7} {:>6} {:>6} {:>8}\n",
                    "id", "name", "model", "mflops", "idle%", "objs", "status"
                );
                for id in self.deployment.machines() {
                    let machine = self
                        .deployment
                        .pool()
                        .machine(id)
                        .map_err(|e| e.to_string())?;
                    let spec = machine.spec().clone();
                    let idle = machine
                        .snapshot()
                        .num(SysParam::IdlePct)
                        .unwrap_or(f64::NAN);
                    let objs = self
                        .deployment
                        .node_stats(id)
                        .map(|s| s.objects_hosted)
                        .unwrap_or(0);
                    let status = if self.deployment.vda().is_failed(id) {
                        "FAILED"
                    } else {
                        "up"
                    };
                    let _ = writeln!(
                        out,
                        "{:<4} {:<10} {:<22} {:>7.1} {:>6.1} {:>6} {:>8}",
                        id.to_string(),
                        spec.name,
                        spec.model,
                        spec.peak_mflops,
                        idle,
                        objs,
                        status
                    );
                }
                Ok(out)
            }
            Command::Snapshot { node, param } => {
                let id = self.node_by_name(&node)?;
                let snap = self
                    .deployment
                    .pool()
                    .snapshot_of(id)
                    .map_err(|e| e.to_string())?;
                let mut out = String::new();
                match param {
                    Some(p) => {
                        let v = snap.get(p).ok_or_else(|| format!("{p} not present"))?;
                        let _ = writeln!(out, "{p} = {v}");
                    }
                    None => {
                        for (p, v) in snap.iter() {
                            let _ = writeln!(out, "{p:<18} = {v}");
                        }
                    }
                }
                Ok(out)
            }
            Command::Cluster { n, constraints } => {
                let constr = (!constraints.is_empty()).then_some(&constraints);
                let cluster = self
                    .deployment
                    .vda()
                    .request_cluster(n, constr)
                    .map_err(|e| e.to_string())?;
                let names: Vec<String> = (0..cluster.nr_nodes())
                    .filter_map(|i| cluster.get_node(i).ok().and_then(|n| n.name().ok()))
                    .collect();
                let out = format!(
                    "cluster {} with {} nodes: {}",
                    cluster.key(),
                    cluster.nr_nodes(),
                    names.join(", ")
                );
                self.clusters.push(cluster);
                Ok(out)
            }
            Command::Arch => {
                if self.clusters.is_empty() {
                    return Ok("no architectures requested from this shell".to_owned());
                }
                let mut out = String::new();
                for c in &self.clusters {
                    let mgr = c
                        .manager()
                        .and_then(|m| m.name().ok())
                        .unwrap_or_else(|| "-".to_owned());
                    let backup = c
                        .backup_manager()
                        .and_then(|m| m.name().ok())
                        .unwrap_or_else(|| "-".to_owned());
                    let _ = writeln!(
                        out,
                        "{}: {} nodes, manager {}, backup {}{}",
                        c.key(),
                        c.nr_nodes(),
                        mgr,
                        backup,
                        if c.is_live() { "" } else { " (freed)" }
                    );
                }
                Ok(out)
            }
            Command::Create { class, node } => {
                let placement = match &node {
                    Some(name) => Placement::OnPhys(self.node_by_name(name)?),
                    None => Placement::Auto,
                };
                let obj = JsObj::create(&self.reg, &class, &[], placement, None)
                    .map_err(|e| e.to_string())?;
                let label = format!(
                    "{}{}",
                    class.to_ascii_lowercase().chars().next().unwrap_or('o'),
                    self.next_obj
                );
                self.next_obj += 1;
                let location = obj.get_node_name().map_err(|e| e.to_string())?;
                self.objects.insert(label.clone(), obj);
                Ok(format!("created {label} ({class}) on {location}"))
            }
            Command::Invoke { obj, method, args } => {
                let o = self.object(&obj)?;
                let vals: Vec<Value> = args.into_iter().map(Value::I64).collect();
                let out = o.sinvoke(&method, &vals).map_err(|e| e.to_string())?;
                Ok(format!("{out:?}"))
            }
            Command::OInvoke { obj, method, args } => {
                let o = self.object(&obj)?;
                let vals: Vec<Value> = args.into_iter().map(Value::I64).collect();
                o.oinvoke(&method, &vals).map_err(|e| e.to_string())?;
                Ok("issued (one-sided)".to_owned())
            }
            Command::Migrate { obj, node } => {
                let dst = self.node_by_name(&node)?;
                let o = self.object(&obj)?;
                o.migrate(MigrateTarget::ToPhys(dst), None)
                    .map_err(|e| e.to_string())?;
                Ok(format!("{obj} now on {node}"))
            }
            Command::Codebase {
                artifact,
                bytes,
                nodes,
            } => {
                let cb = self.reg.codebase();
                cb.add(&artifact, bytes);
                let mut loaded = Vec::new();
                for name in &nodes {
                    let id = self.node_by_name(name)?;
                    cb.load_phys(id).map_err(|e| e.to_string())?;
                    loaded.push(name.clone());
                }
                self.codebases.push(cb);
                Ok(format!(
                    "loaded {artifact} ({bytes} B) onto {}",
                    loaded.join(", ")
                ))
            }
            Command::Store { obj, key } => {
                let o = self.object(&obj)?;
                let key = o.store(key.as_deref()).map_err(|e| e.to_string())?;
                Ok(format!("stored as {key:?}"))
            }
            Command::Load { key, label, node } => {
                let placement = match &node {
                    Some(name) => Placement::OnPhys(self.node_by_name(name)?),
                    None => Placement::Auto,
                };
                let obj = self
                    .reg
                    .load_stored(&key, placement, None)
                    .map_err(|e| e.to_string())?;
                let location = obj.get_node_name().map_err(|e| e.to_string())?;
                self.objects.insert(label.clone(), obj);
                Ok(format!("loaded {key:?} as {label} on {location}"))
            }
            Command::Kill { node } => {
                let id = self.node_by_name(&node)?;
                self.deployment.kill_node(id);
                Ok(format!("{node} killed (detection is up to the NAS)"))
            }
            Command::AddNode { name, mflops } => {
                if self.deployment.pool().by_name(&name).is_ok() {
                    return Err(format!("a machine named {name:?} already exists"));
                }
                let id = self
                    .deployment
                    .add_machine(MachineConfig::idle(&name, mflops));
                Ok(format!("added {name} as {id} ({mflops} Mflop/s, idle)"))
            }
            Command::RmNode { name } => {
                let id = self.node_by_name(&name)?;
                self.deployment
                    .remove_machine(id)
                    .map_err(|e| e.to_string())?;
                Ok(format!("removed {name}"))
            }
            Command::Period { secs } => {
                self.deployment.set_monitor_period(secs);
                Ok(format!("monitoring period set to {secs} s"))
            }
            Command::Timeout { secs } => {
                self.deployment.set_failure_timeout(secs);
                Ok(format!("failure timeout set to {secs} s"))
            }
            Command::Automigrate { enabled } => {
                self.deployment.set_automigration(enabled);
                Ok(format!(
                    "automatic migration {}",
                    if enabled { "enabled" } else { "disabled" }
                ))
            }
            Command::Params { cached } => {
                if cached {
                    let p = self.deployment.plane_stats();
                    let mut out = format!(
                        "aggregation plane: {} (ttl {:.2}s)\n",
                        if p.enabled { "enabled" } else { "disabled" },
                        p.ttl
                    );
                    let _ = writeln!(
                        out,
                        "sample cache: {} hits, {} misses, {} invalidations, {} entries",
                        p.hits, p.misses, p.invalidations, p.cached
                    );
                    let _ = writeln!(
                        out,
                        "placement heap: {} free machines; rollups: {} node contributions",
                        p.heap, p.tracked
                    );
                    let _ = writeln!(out, "dirty set: {} nodes awaiting re-evaluation", p.dirty);
                    out.push_str(
                        "(counters also export via `metrics` as vda.sample.* / vda.dirty.size)\n",
                    );
                    return Ok(out);
                }
                let mut out = format!(
                    "{:<10} {:>8} {:>7} {:>10} {:>7}\n",
                    "name", "load1", "idle%", "availMB", "procs"
                );
                for id in self.deployment.machines() {
                    let snap = self
                        .deployment
                        .pool()
                        .snapshot_of(id)
                        .map_err(|e| e.to_string())?;
                    let name = snap.str(SysParam::NodeName).unwrap_or("?").to_owned();
                    let num = |p: SysParam| snap.num(p).unwrap_or(f64::NAN);
                    let _ = writeln!(
                        out,
                        "{:<10} {:>8.3} {:>7.1} {:>10.1} {:>7.0}",
                        name,
                        num(SysParam::CpuLoad1),
                        num(SysParam::IdlePct),
                        num(SysParam::AvailMem),
                        num(SysParam::NumProcesses),
                    );
                }
                Ok(out)
            }
            Command::Stats => {
                let net = self.deployment.net_stats();
                let mut out = format!(
                    "network: {} msgs sent, {} delivered, {} dropped, {} bytes\n",
                    net.msgs_sent, net.msgs_delivered, net.msgs_dropped, net.bytes_sent
                );
                for id in self.deployment.machines() {
                    if let Some(s) = self.deployment.node_stats(id) {
                        let _ = writeln!(
                            out,
                            "{id}: {} invocations, {} creations, {}/{} migrations in/out, {} monitor rounds",
                            s.invocations, s.creations, s.migrations_in, s.migrations_out, s.monitor_rounds
                        );
                    }
                }
                Ok(out)
            }
            Command::Directory => {
                let status = self.deployment.directory_status();
                if status.is_empty() {
                    return Ok(
                        "replicated directory disabled (boot with directory_replicas >= 1)"
                            .to_owned(),
                    );
                }
                let max_commit = status.iter().map(|s| s.commit).max().unwrap_or(0);
                let mut out = match status.iter().find(|s| s.role == "leader") {
                    Some(l) => format!(
                        "leader: node {} (term {}, commit {})\n",
                        l.node, l.term, l.commit
                    ),
                    None => "leader: none (election in progress)\n".to_owned(),
                };
                let _ = writeln!(
                    out,
                    "heartbeat {:.3}s, election timeout {:.3}s (virtual)",
                    status[0].heartbeat_interval, status[0].election_timeout
                );
                if status[0].lease_duration > 0.0 {
                    let _ = writeln!(
                        out,
                        "read leases: {:.3}s (leader serves reads locally while leased)",
                        status[0].lease_duration
                    );
                } else {
                    out.push_str("read leases: off (every read runs a probe round)\n");
                }
                let _ = writeln!(
                    out,
                    "{:<5} {:<10} {:>5} {:>7} {:>8} {:>4} {:>4} {:>9} {:>10} {:>6}",
                    "node",
                    "role",
                    "term",
                    "commit",
                    "applied",
                    "lag",
                    "log",
                    "snapshot",
                    "locations",
                    "roles"
                );
                for s in &status {
                    let _ = writeln!(
                        out,
                        "{:<5} {:<10} {:>5} {:>7} {:>8} {:>4} {:>4} {:>9} {:>10} {:>6}",
                        s.node,
                        s.role,
                        s.term,
                        s.commit,
                        s.applied,
                        max_commit - s.commit,
                        s.log_entries,
                        s.snapshot_index,
                        s.locations,
                        s.roles
                    );
                }
                Ok(out)
            }
            Command::Batch => {
                let snap = self.deployment.obs().snapshot();
                let mut out = match self.deployment.network().batching_config() {
                    Some(bc) => format!(
                        "rmi batching: on (flush window {:.2e} s virtual, max batch {} bytes)\n",
                        bc.flush_window, bc.max_bytes
                    ),
                    None => {
                        "rmi batching: off (boot with JsShell::rmi_batching to enable)\n".to_owned()
                    }
                };
                let coalesced = snap.metrics.counter_total("net.batch.coalesced");
                let flushed = snap.metrics.counter_total("net.batch.flushed");
                let msgs = snap.metrics.counter_total("net.batch.msgs");
                let saved = snap.metrics.counter_total("net.batch.bytes_saved");
                // Flushes broken down by why the batch closed.
                let by_reason = |reason: &str| {
                    snap.metrics
                        .counters
                        .iter()
                        .filter(|(k, _)| k.name == "net.batch.flushed" && k.component == reason)
                        .map(|(_, v)| v)
                        .sum::<u64>()
                };
                let _ = writeln!(
                    out,
                    "flushes: {flushed} ({} window, {} bytes-overflow), {msgs} messages carried",
                    by_reason("window"),
                    by_reason("bytes"),
                );
                let mean = if flushed > 0 {
                    msgs as f64 / flushed as f64
                } else {
                    0.0
                };
                let _ = writeln!(
                    out,
                    "coalesced followers: {coalesced}; mean batch size: {mean:.2}"
                );
                let _ = writeln!(out, "modeled wire capacity freed: {saved} bytes");
                let compressed = snap.metrics.counter_total("net.batch.compressed_bytes");
                if compressed > 0 {
                    let _ = writeln!(
                        out,
                        "compressed batch payload charged to the wire: {compressed} bytes"
                    );
                }
                let open: f64 = snap
                    .metrics
                    .gauges
                    .iter()
                    .filter(|(k, _)| k.name == "net.batch.pending")
                    .map(|(_, v)| v)
                    // Not `.sum()`: its f64 identity is -0.0, which would
                    // render as "-0" when no gauge exists yet.
                    .fold(0.0, |a, v| a + v);
                let _ = writeln!(out, "open batches now: {open:.0}");
                Ok(out)
            }
            Command::Affinity { set } => {
                if let Some(enabled) = set {
                    self.deployment.set_affinity(enabled);
                    return Ok(format!(
                        "affinity-guided re-placement {}",
                        if enabled { "enabled" } else { "disabled" }
                    ));
                }
                let a = self.deployment.affinity_stats();
                let mut out = format!(
                    "affinity plane: {} (half-life {:.1}s virtual)\n",
                    if a.placement { "on" } else { "off" },
                    a.half_life
                );
                let _ = writeln!(
                    out,
                    "traffic counters: {} objects, {} caller/object pairs",
                    a.objects, a.pairs
                );
                let _ = writeln!(
                    out,
                    "re-placement: {} rounds, {} objects moved toward dominant callers",
                    a.rounds, a.migrations
                );
                let snap = self.deployment.obs().snapshot();
                let reads = snap.metrics.counter_total("dir.reads");
                let local = snap.metrics.counter_total("dir.lease.local_reads");
                let _ = writeln!(
                    out,
                    "directory read leases: {} ({local}/{reads} reads served locally)",
                    if a.leases { "on" } else { "off" }
                );
                Ok(out)
            }
            Command::Executor => {
                let threads = self.deployment.executor_threads();
                if threads == 0 {
                    return Ok(
                        "runtime: thread-per-node (boot with JsShell::executor(n) for the \
                         work-stealing executor)"
                            .to_owned(),
                    );
                }
                let mut out = format!("runtime: work-stealing executor, {threads} workers\n");
                if let Some(s) = self.deployment.exec_stats() {
                    let _ = writeln!(
                        out,
                        "queue depth {}, blocked {}, spares {}, timers pending {}",
                        s.queue_depth, s.blocked, s.spares, s.timer_pending
                    );
                    let _ = writeln!(
                        out,
                        "steals {}, parks {}, spare spawns {}",
                        s.steals, s.parks, s.spare_spawns
                    );
                }
                Ok(out)
            }
            Command::Metrics { json } => {
                if json {
                    return Ok(self.deployment.obs().to_json());
                }
                let mut out = self.deployment.obs().summary();
                let endpoints = self.deployment.endpoint_stats();
                if !endpoints.is_empty() {
                    out.push_str("per-endpoint traffic (msgs/bytes):\n");
                    let _ = writeln!(
                        out,
                        "  {:<6} {:>18} {:>18} {:>18} {:>18}",
                        "node", "sent", "delivered", "dropped", "rejected"
                    );
                    for e in endpoints {
                        let _ = writeln!(
                            out,
                            "  {:<6} {:>18} {:>18} {:>18} {:>18}",
                            e.node.to_string(),
                            format!("{}/{}", e.sent_msgs, e.sent_bytes),
                            format!("{}/{}", e.delivered_msgs, e.delivered_bytes),
                            format!("{}/{}", e.dropped_msgs, e.dropped_bytes),
                            format!("{}/{}", e.rejected_msgs, e.rejected_bytes),
                        );
                    }
                }
                Ok(out)
            }
            Command::Trace { filter } => {
                let spans = self.deployment.obs().tracer().snapshot();
                if spans.is_empty() {
                    return Ok("no spans recorded (is observability enabled?)".to_owned());
                }
                let spans = match &filter {
                    None => spans,
                    Some(prefix) => {
                        // Keep a span when it — or any ancestor — matches, so
                        // `trace migrate` shows the whole protocol subtree.
                        let by_id: HashMap<_, _> = spans.iter().map(|s| (s.id, s)).collect();
                        let matches = |s: &jsym_core::obs::SpanRecord| {
                            let mut cur = Some(s);
                            while let Some(c) = cur {
                                if c.name.starts_with(prefix.as_str()) {
                                    return true;
                                }
                                cur = c.parent.and_then(|p| by_id.get(&p).copied());
                            }
                            false
                        };
                        let kept: Vec<_> = spans.iter().filter(|s| matches(s)).cloned().collect();
                        if kept.is_empty() {
                            return Ok(format!("no spans matching {prefix:?}"));
                        }
                        kept
                    }
                };
                Ok(jsym_core::obs::render_tree(&spans))
            }
            Command::Log { n } => {
                let events = self.deployment.events().tail(n);
                if events.is_empty() {
                    return Ok("no events yet".to_owned());
                }
                let mut out = String::new();
                for (at, ev) in events {
                    let _ = writeln!(out, "[{at:10.2}s] {ev}");
                }
                Ok(out)
            }
            Command::Objects => {
                if self.objects.is_empty() {
                    return Ok("no objects; use `create`".to_owned());
                }
                let mut out = String::new();
                for (label, obj) in &self.objects {
                    let loc = obj.get_node_name().unwrap_or_else(|_| "<gone>".to_owned());
                    let _ = writeln!(out, "{label}: {} on {loc}", obj.class_name());
                }
                Ok(out)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsym_core::testkit::{register_test_classes, shell_with_idle_machines};

    fn session() -> ShellSession {
        let d = shell_with_idle_machines(3).boot();
        register_test_classes(&d);
        ShellSession::new(d).unwrap()
    }

    #[test]
    fn nodes_lists_all_machines() {
        let mut s = session();
        let out = s.run_line("nodes");
        assert!(out.contains("m0") && out.contains("m1") && out.contains("m2"));
        assert!(out.contains("up"));
    }

    #[test]
    fn create_invoke_migrate_flow() {
        let mut s = session();
        let out = s.run_line("create Counter m1");
        assert!(out.contains("created c1"), "{out}");
        assert!(out.contains("on m1"), "{out}");
        assert_eq!(s.run_line("invoke c1 add 41"), "I64(41)");
        assert_eq!(s.run_line("oinvoke c1 add 1"), "issued (one-sided)");
        assert_eq!(s.run_line("invoke c1 get"), "I64(42)");
        assert!(s.run_line("migrate c1 m2").contains("now on m2"));
        assert_eq!(s.run_line("invoke c1 get"), "I64(42)");
        let objs = s.run_line("objects");
        assert!(objs.contains("c1: Counter on m2"), "{objs}");
    }

    #[test]
    fn snapshot_and_single_param() {
        let mut s = session();
        let all = s.run_line("snapshot m0");
        assert!(all.contains("NodeName"));
        assert!(all.contains("IdlePct"));
        let one = s.run_line("snapshot m0 idle");
        assert!(one.starts_with("IdlePct ="), "{one}");
        assert!(s.run_line("snapshot ghost").starts_with("error:"));
    }

    #[test]
    fn params_shows_live_and_cached_views() {
        let mut s = session();
        let live = s.run_line("params");
        assert!(live.contains("name"), "{live}");
        assert!(
            live.contains("m0") && live.contains("m1") && live.contains("m2"),
            "{live}"
        );
        // Allocate something so the plane has cache traffic to report.
        s.run_line("cluster 2 idle>=50");
        let cached = s.run_line("params --cached");
        assert!(cached.contains("aggregation plane: enabled"), "{cached}");
        assert!(cached.contains("sample cache:"), "{cached}");
        assert!(cached.contains("dirty set:"), "{cached}");
        assert!(s.run_line("params --cached extra").starts_with("error:"));
    }

    #[test]
    fn cluster_with_constraints_and_arch() {
        let mut s = session();
        let out = s.run_line("cluster 2 idle>=50");
        assert!(out.contains("with 2 nodes"), "{out}");
        let arch = s.run_line("arch");
        assert!(arch.contains("manager"), "{arch}");
    }

    #[test]
    fn codebase_gates_creation() {
        let mut s = session();
        let err = s.run_line("create Blob m0");
        assert!(err.contains("error"), "{err}");
        let out = s.run_line("codebase blob.jar 1000 m0");
        assert!(out.contains("loaded blob.jar"), "{out}");
        let ok = s.run_line("create Blob m0");
        assert!(ok.contains("created b"), "{ok}");
    }

    #[test]
    fn store_and_load_round_trip() {
        let mut s = session();
        s.run_line("create Counter m0");
        s.run_line("invoke c1 add 7");
        assert!(s.run_line("store c1 snap").contains("stored as \"snap\""));
        assert!(s
            .run_line("load snap c2 m1")
            .contains("loaded \"snap\" as c2 on m1"));
        assert_eq!(s.run_line("invoke c2 get"), "I64(7)");
    }

    #[test]
    fn kill_and_stats_and_quit() {
        let mut s = session();
        assert!(s.run_line("kill m2").contains("killed"));
        let nodes = s.run_line("nodes");
        // The machine is network-dead; NAS detection is off in the fixture,
        // so status still reads "up" — but stats must still render.
        assert!(nodes.contains("m2"));
        assert!(s.run_line("stats").contains("network:"));
        assert!(s.run_line("automigrate on").contains("enabled"));
        assert_eq!(s.run_line("quit"), "bye");
        assert!(s.finished);
    }

    #[test]
    fn bad_input_is_reported_not_fatal() {
        let mut s = session();
        assert!(s.run_line("nonsense").starts_with("error:"));
        assert!(s.run_line("invoke ghost get").starts_with("error:"));
        assert!(s.run_line("").starts_with("error:"));
        // The session still works afterwards.
        assert!(s.run_line("nodes").contains("m0"));
    }
}

#[cfg(test)]
mod event_log_tests {
    use super::*;
    use jsym_core::testkit::{register_test_classes, shell_with_idle_machines};

    #[test]
    fn log_command_shows_lifecycle_events() {
        let d = shell_with_idle_machines(3).boot();
        register_test_classes(&d);
        let mut s = ShellSession::new(d).unwrap();
        s.run_line("create Counter m0");
        s.run_line("migrate c1 m1");
        s.run_line("store c1 snap");
        s.run_line("codebase blob.jar 500 m2");
        let log = s.run_line("log 20");
        assert!(log.contains("created obj"), "{log}");
        assert!(log.contains("migrated obj"), "{log}");
        assert!(log.contains("stored obj"), "{log}");
        assert!(log.contains("loaded blob.jar"), "{log}");
        assert_eq!(Command::parse("log 5").unwrap(), Command::Log { n: 5 });
        assert_eq!(Command::parse("log").unwrap(), Command::Log { n: 20 });
    }
}

#[cfg(test)]
mod obs_tests {
    use super::*;
    use jsym_core::testkit::{register_test_classes, shell_with_idle_machines};

    #[test]
    fn metrics_command_renders_summary_and_json() {
        let d = shell_with_idle_machines(3).boot();
        register_test_classes(&d);
        let mut s = ShellSession::new(d).unwrap();
        s.run_line("create Counter m0");
        s.run_line("invoke c1 add 5");
        let metrics = s.run_line("metrics");
        assert!(metrics.contains("rmi.calls"), "{metrics}");
        assert!(metrics.contains("per-endpoint traffic"), "{metrics}");
        let json = s.run_line("metrics json");
        assert!(json.contains("\"schema\": \"jsym-obs/v1\""), "{json}");
        assert!(json.contains("\"counters\": ["), "{json}");
    }

    #[test]
    fn batch_command_reports_config_and_counters() {
        let bc = jsym_net::BatchConfig::default();
        let d = shell_with_idle_machines(2)
            .rmi_batching(10.0, bc.max_bytes)
            .boot();
        register_test_classes(&d);
        let mut s = ShellSession::new(d).unwrap();
        s.run_line("create Counter m1");
        for _ in 0..10 {
            s.run_line("oinvoke c1 add 1");
        }
        s.run_line("invoke c1 get");
        let out = s.run_line("batch");
        assert!(out.contains("rmi batching: on"), "{out}");
        assert!(out.contains("flushes:"), "{out}");
        assert!(out.contains("coalesced followers:"), "{out}");
        assert!(out.contains("open batches now:"), "{out}");
        // The one-sided burst shares windows with its own follow-ups, so
        // at least one follower must have coalesced.
        let followers: u64 = out
            .lines()
            .find(|l| l.starts_with("coalesced followers:"))
            .and_then(|l| {
                l.trim_start_matches("coalesced followers:")
                    .split(';')
                    .next()?
                    .trim()
                    .parse()
                    .ok()
            })
            .unwrap();
        assert!(followers > 0, "{out}");
    }

    #[test]
    fn executor_command_reports_mode_and_counters() {
        // Threaded deployment: reports the mode and how to switch.
        let d = shell_with_idle_machines(2).boot();
        register_test_classes(&d);
        let mut s = ShellSession::new(d).unwrap();
        let out = s.run_line("executor");
        assert!(out.contains("thread-per-node"), "{out}");
        // Executor deployment: reports worker count and live counters.
        let d = shell_with_idle_machines(2).executor(2).boot();
        register_test_classes(&d);
        let mut s = ShellSession::new(d).unwrap();
        s.run_line("create Counter m1");
        s.run_line("invoke c1 add 1");
        let out = s.run_line("exec");
        assert!(out.contains("work-stealing executor, 2 workers"), "{out}");
        assert!(out.contains("queue depth"), "{out}");
        assert!(out.contains("steals"), "{out}");
    }

    #[test]
    fn batch_command_reports_disabled_without_batching() {
        let d = shell_with_idle_machines(2).boot();
        register_test_classes(&d);
        let mut s = ShellSession::new(d).unwrap();
        let out = s.run_line("batch");
        assert!(out.contains("rmi batching: off"), "{out}");
    }

    #[test]
    fn affinity_command_reports_stats_and_toggles() {
        // Plain deployment: the plane is off, stats still render.
        let d = shell_with_idle_machines(2).boot();
        register_test_classes(&d);
        let mut s = ShellSession::new(d).unwrap();
        let out = s.run_line("affinity");
        assert!(out.contains("affinity plane: off"), "{out}");
        assert!(out.contains("directory read leases: off"), "{out}");
        // With re-placement on, traffic counters fill and the toggle works.
        let d = shell_with_idle_machines(3)
            .affinity(jsym_core::AffinityConfig {
                placement: true,
                ..jsym_core::AffinityConfig::default()
            })
            .boot();
        register_test_classes(&d);
        let mut s = ShellSession::new(d).unwrap();
        s.run_line("create Counter m1");
        for _ in 0..5 {
            s.run_line("invoke c1 add 1");
        }
        let out = s.run_line("affinity");
        assert!(out.contains("affinity plane: on"), "{out}");
        assert!(out.contains("traffic counters: 1 objects"), "{out}");
        assert!(s.run_line("affinity off").contains("disabled"));
        let out = s.run_line("affinity");
        assert!(out.contains("affinity plane: off"), "{out}");
        assert!(s.run_line("affinity on").contains("enabled"));
    }

    #[test]
    fn trace_command_shows_migration_protocol_subtree() {
        let d = shell_with_idle_machines(3).boot();
        register_test_classes(&d);
        let mut s = ShellSession::new(d).unwrap();
        s.run_line("create Counter m0");
        s.run_line("migrate c1 m1");
        let trace = s.run_line("trace migrate");
        for step in [
            "migrate.request",
            "migrate.quiesce",
            "migrate.transfer",
            "migrate.install",
            "migrate.confirm",
        ] {
            assert!(trace.contains(step), "missing {step} in:\n{trace}");
        }
        // The filtered view must not include unrelated spans.
        assert!(!trace.contains("rmi.create"), "{trace}");
        // The unfiltered view includes the RMI spans too.
        let full = s.run_line("trace");
        assert!(full.contains("rmi.create"), "{full}");
        assert!(s.run_line("trace nosuchspan").contains("no spans matching"));
    }
}

#[cfg(test)]
mod directory_tests {
    use super::*;
    use jsym_core::testkit::{register_test_classes, shell_with_idle_machines};

    #[test]
    fn directory_command_reports_leader_term_and_replica_lag() {
        let d = shell_with_idle_machines(3).directory_replicas(3).boot();
        register_test_classes(&d);
        let mut s = ShellSession::new(d).unwrap();
        s.run_line("create Counter m1");
        s.run_line("invoke c1 add 2");
        // Elections are asynchronous; wait for a stable leader to report.
        let mut out = String::new();
        for _ in 0..400 {
            out = s.run_line("directory");
            if out.contains("leader: node") {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert!(out.contains("leader: node"), "{out}");
        assert!(out.contains("term"), "{out}");
        assert!(out.contains("lag"), "{out}");
        assert!(out.contains("follower"), "{out}");
        assert!(out.contains("heartbeat"), "{out}");
        assert!(out.contains("read leases: off"), "{out}");
    }

    #[test]
    fn directory_command_reports_disabled_without_replicas() {
        let d = shell_with_idle_machines(2).boot();
        register_test_classes(&d);
        let mut s = ShellSession::new(d).unwrap();
        let out = s.run_line("directory");
        assert!(out.contains("disabled"), "{out}");
    }

    #[test]
    fn metrics_command_exports_transient_worker_gauge() {
        let d = shell_with_idle_machines(2).boot();
        register_test_classes(&d);
        let mut s = ShellSession::new(d).unwrap();
        // The NAS monitor publishes the gauge once per round; the fixture's
        // virtual period is microseconds of real time, so poll briefly.
        let mut metrics = String::new();
        for _ in 0..400 {
            metrics = s.run_line("metrics");
            if metrics.contains("pool.transient_workers") {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert!(metrics.contains("pool.transient_workers"), "{metrics}");
    }
}

#[cfg(test)]
mod addnode_tests {
    use super::*;
    use jsym_core::testkit::{register_test_classes, shell_with_idle_machines};

    #[test]
    fn addnode_grows_the_deployment_usably() {
        let d = shell_with_idle_machines(2).boot();
        register_test_classes(&d);
        let mut s = ShellSession::new(d).unwrap();
        let out = s.run_line("addnode newton 42");
        assert!(out.contains("added newton"), "{out}");
        // The new machine is immediately usable for placement.
        let created = s.run_line("create Counter newton");
        assert!(created.contains("on newton"), "{created}");
        assert_eq!(s.run_line("invoke c1 add 3"), "I64(3)");
        // Duplicate names are rejected.
        assert!(s.run_line("addnode newton 10").starts_with("error:"));
    }
}

#[cfg(test)]
mod rmnode_tests {
    use super::*;
    use jsym_core::testkit::{register_test_classes, shell_with_idle_machines};

    #[test]
    fn rmnode_refuses_busy_machines_and_removes_drained_ones() {
        let d = shell_with_idle_machines(3).boot();
        register_test_classes(&d);
        let mut s = ShellSession::new(d).unwrap();
        s.run_line("create Counter m2");
        assert!(s.run_line("rmnode m2").starts_with("error:"));
        // Migrate the object away, then remove.
        s.run_line("migrate c1 m0");
        assert_eq!(s.run_line("rmnode m2"), "removed m2");
        let nodes = s.run_line("nodes");
        assert!(!nodes.contains("m2"), "{nodes}");
        assert!(s.run_line("rmnode m2").starts_with("error:"));
    }
}
