//! # jsym-shell — the JS-Shell as an interactive tool
//!
//! Paper §5: "The nodes on which JRS is installed are configured by using
//! the JS-Shell. The set of nodes can be changed by adding or removing nodes
//! dynamically during execution of JavaSymphony applications (JSAs) by using
//! JS-Shell. ... The performance measurement and collection periods can be
//! controlled under the JS-Shell. ... it is possible to enable/disable
//! automatic migration under the JS-Shell."
//!
//! This crate turns that administration surface into a small command
//! language (parse with [`Command::parse`], run with
//! [`ShellSession::execute`]) plus a REPL binary (`jsym-shell`). The
//! commands operate on a live [`jsym_core::Deployment`] and an administrative
//! application registration, so everything the paper's shell could do —
//! inspect system parameters, build architectures, place and migrate
//! objects, toggle auto-migration, kill nodes — can be done by hand.

#![warn(missing_docs)]

mod command;
mod session;

pub use command::{Command, ParseError};
pub use session::ShellSession;
