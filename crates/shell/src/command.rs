//! The shell's command language.

use jsym_sysmon::{JsConstraints, SysParam};
use std::fmt;

/// A parsed shell command.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// `help` — list commands.
    Help,
    /// `nodes` — one line per machine: name, model, load, hosted objects.
    Nodes,
    /// `snapshot <node> [param]` — system parameters of a machine.
    Snapshot {
        /// Machine name.
        node: String,
        /// Optional single parameter to show.
        param: Option<SysParam>,
    },
    /// `cluster <n> [constraint...]` — request a cluster.
    Cluster {
        /// Number of nodes.
        n: usize,
        /// Admission constraints (`idle>=50` style).
        constraints: JsConstraints,
    },
    /// `arch` — list live architectures and their managers.
    Arch,
    /// `create <class> [node]` — create an object, optionally on a machine.
    Create {
        /// Class name.
        class: String,
        /// Optional machine name.
        node: Option<String>,
    },
    /// `invoke <obj> <method> [i64 args...]` — synchronous invocation.
    Invoke {
        /// Object label from a previous `create`.
        obj: String,
        /// Method name.
        method: String,
        /// Integer arguments.
        args: Vec<i64>,
    },
    /// `oinvoke <obj> <method> [i64 args...]` — one-sided invocation.
    OInvoke {
        /// Object label.
        obj: String,
        /// Method name.
        method: String,
        /// Integer arguments.
        args: Vec<i64>,
    },
    /// `migrate <obj> <node>` — explicit migration.
    Migrate {
        /// Object label.
        obj: String,
        /// Destination machine name.
        node: String,
    },
    /// `codebase <artifact> <bytes> <node>...` — ship an artifact.
    Codebase {
        /// Artifact name.
        artifact: String,
        /// Declared size in bytes.
        bytes: usize,
        /// Machine names to load it onto.
        nodes: Vec<String>,
    },
    /// `store <obj> [key]` — persist an object.
    Store {
        /// Object label.
        obj: String,
        /// Optional persistence key.
        key: Option<String>,
    },
    /// `load <key> <label> [node]` — resurrect a stored object as `label`.
    Load {
        /// Persistence key.
        key: String,
        /// New object label.
        label: String,
        /// Optional machine name.
        node: Option<String>,
    },
    /// `kill <node>` — fail a machine.
    Kill {
        /// Machine name.
        node: String,
    },
    /// `addnode <name> <mflops>` — grow the deployment (paper §5: "The set
    /// of nodes can be changed by adding or removing nodes dynamically").
    AddNode {
        /// New machine's name.
        name: String,
        /// Its peak rate in Mflop/s.
        mflops: f64,
    },
    /// `rmnode <name>` — gracefully remove a drained machine.
    RmNode {
        /// Machine name.
        name: String,
    },
    /// `automigrate on|off` — toggle automatic migration.
    Automigrate {
        /// Desired state.
        enabled: bool,
    },
    /// `period <secs>` — change the NAS monitoring period at runtime.
    Period {
        /// New period in virtual seconds.
        secs: f64,
    },
    /// `timeout <secs>` — change the NAS failure timeout at runtime.
    Timeout {
        /// New timeout in virtual seconds.
        secs: f64,
    },
    /// `params [--cached]` — per-machine key system parameters; with
    /// `--cached`, the aggregation-plane view instead (DESIGN.md §9):
    /// configuration, sample-cache hit/miss/invalidation counters, heap and
    /// dirty-set sizes.
    Params {
        /// Show the aggregation-plane statistics instead of live samples.
        cached: bool,
    },
    /// `stats` — network and per-node runtime counters.
    Stats,
    /// `directory` — replicated-directory replica status (DESIGN.md §10):
    /// leader, term, commit/applied lag and state sizes per replica.
    Directory,
    /// `batch` — RMI coalescing stage: configuration, flush counters by
    /// reason, mean batch size and modeled wire capacity freed.
    Batch,
    /// `affinity [on|off]` — affinity-plane traffic/migration statistics
    /// (DESIGN.md §14), or toggle affinity-guided re-placement at runtime.
    Affinity {
        /// `Some(enabled)` toggles re-placement; `None` shows statistics.
        set: Option<bool>,
    },
    /// `executor` — runtime scheduling mode: thread-per-node or the
    /// work-stealing executor, with live worker/queue/blocked counters.
    Executor,
    /// `metrics [json]` — observability registry: counters, gauges,
    /// histograms and per-endpoint traffic; `json` emits the machine-
    /// readable export instead.
    Metrics {
        /// Emit the JSON export instead of the summary table.
        json: bool,
    },
    /// `trace [name-prefix]` — recorded spans as an indented tree with
    /// virtual start/end times, optionally restricted to subtrees whose
    /// root name starts with the prefix (e.g. `trace migrate`).
    Trace {
        /// Optional span-name prefix filter.
        filter: Option<String>,
    },
    /// `log [n]` — the last `n` (default 20) runtime events.
    Log {
        /// How many events to show.
        n: usize,
    },
    /// `objects` — the session's object table.
    Objects,
    /// `quit` / `exit`.
    Quit,
}

/// Why a command line failed to parse.
#[derive(Clone, Debug, PartialEq)]
pub enum ParseError {
    /// The line was empty.
    Empty,
    /// Unknown command word.
    UnknownCommand(String),
    /// Wrong arguments; the string names the expected usage.
    Usage(&'static str),
    /// A constraint clause could not be parsed.
    BadConstraint(String),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Empty => write!(f, "empty command"),
            ParseError::UnknownCommand(c) => write!(f, "unknown command {c:?}; try `help`"),
            ParseError::Usage(u) => write!(f, "usage: {u}"),
            ParseError::BadConstraint(c) => write!(f, "cannot parse constraint {c:?}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Parameter names accepted in constraint clauses.
fn param_by_name(name: &str) -> Option<SysParam> {
    let lower = name.to_ascii_lowercase();
    let mapping: &[(&str, SysParam)] = &[
        ("idle", SysParam::IdlePct),
        ("idlepct", SysParam::IdlePct),
        ("availmem", SysParam::AvailMem),
        ("mem", SysParam::AvailMem),
        ("totalmem", SysParam::TotalMem),
        ("cpuload", SysParam::CpuLoad1),
        ("load", SysParam::CpuLoad1),
        ("syspct", SysParam::CpuSysPct),
        ("peak", SysParam::PeakMflops),
        ("peakmflops", SysParam::PeakMflops),
        ("mhz", SysParam::CpuMhz),
        ("swapratio", SysParam::SwapSpaceRatio),
        ("name", SysParam::NodeName),
        ("nodename", SysParam::NodeName),
        ("procs", SysParam::NumProcesses),
        ("users", SysParam::LoggedInUsers),
    ];
    mapping.iter().find(|(n, _)| *n == lower).map(|(_, p)| *p)
}

/// Parses `idle>=50`, `name!=milena`, `peak>10` clauses.
fn parse_constraint(clause: &str, constr: &mut JsConstraints) -> Result<(), ParseError> {
    for op in ["<=", ">=", "!=", "==", "<", ">", "="] {
        if let Some((lhs, rhs)) = clause.split_once(op) {
            let param = param_by_name(lhs.trim())
                .ok_or_else(|| ParseError::BadConstraint(clause.to_owned()))?;
            let rhs = rhs.trim();
            let added = if param.is_string() {
                constr.try_set(param, op, rhs).is_some()
            } else {
                let num: f64 = rhs
                    .parse()
                    .map_err(|_| ParseError::BadConstraint(clause.to_owned()))?;
                constr.try_set(param, op, num).is_some()
            };
            return if added {
                Ok(())
            } else {
                Err(ParseError::BadConstraint(clause.to_owned()))
            };
        }
    }
    Err(ParseError::BadConstraint(clause.to_owned()))
}

impl Command {
    /// Parses one command line.
    pub fn parse(line: &str) -> Result<Command, ParseError> {
        let mut words = line.split_whitespace();
        let head = words.next().ok_or(ParseError::Empty)?;
        let rest: Vec<&str> = words.collect();
        match head.to_ascii_lowercase().as_str() {
            "help" | "?" => Ok(Command::Help),
            "nodes" | "ls" => Ok(Command::Nodes),
            "snapshot" | "snap" => {
                let node = rest
                    .first()
                    .ok_or(ParseError::Usage("snapshot <node> [param]"))?;
                let param = match rest.get(1) {
                    Some(p) => Some(
                        param_by_name(p)
                            .ok_or_else(|| ParseError::BadConstraint((*p).to_owned()))?,
                    ),
                    None => None,
                };
                Ok(Command::Snapshot {
                    node: (*node).to_owned(),
                    param,
                })
            }
            "cluster" => {
                let n: usize = rest
                    .first()
                    .and_then(|s| s.parse().ok())
                    .ok_or(ParseError::Usage("cluster <n> [param<op>value ...]"))?;
                let mut constraints = JsConstraints::new();
                for clause in &rest[1..] {
                    parse_constraint(clause, &mut constraints)?;
                }
                Ok(Command::Cluster { n, constraints })
            }
            "arch" => Ok(Command::Arch),
            "create" => {
                let class = rest
                    .first()
                    .ok_or(ParseError::Usage("create <class> [node]"))?;
                Ok(Command::Create {
                    class: (*class).to_owned(),
                    node: rest.get(1).map(|s| (*s).to_owned()),
                })
            }
            "invoke" | "oinvoke" => {
                let obj = rest
                    .first()
                    .ok_or(ParseError::Usage("invoke <obj> <method> [i64...]"))?;
                let method = rest
                    .get(1)
                    .ok_or(ParseError::Usage("invoke <obj> <method> [i64...]"))?;
                let args: Result<Vec<i64>, _> = rest[2..].iter().map(|s| s.parse()).collect();
                let args = args.map_err(|_| ParseError::Usage("arguments must be integers"))?;
                if head.eq_ignore_ascii_case("invoke") {
                    Ok(Command::Invoke {
                        obj: (*obj).to_owned(),
                        method: (*method).to_owned(),
                        args,
                    })
                } else {
                    Ok(Command::OInvoke {
                        obj: (*obj).to_owned(),
                        method: (*method).to_owned(),
                        args,
                    })
                }
            }
            "migrate" => match rest.as_slice() {
                [obj, node] => Ok(Command::Migrate {
                    obj: (*obj).to_owned(),
                    node: (*node).to_owned(),
                }),
                _ => Err(ParseError::Usage("migrate <obj> <node>")),
            },
            "codebase" => {
                if rest.len() < 3 {
                    return Err(ParseError::Usage("codebase <artifact> <bytes> <node>..."));
                }
                let bytes: usize = rest[1]
                    .parse()
                    .map_err(|_| ParseError::Usage("codebase <artifact> <bytes> <node>..."))?;
                Ok(Command::Codebase {
                    artifact: rest[0].to_owned(),
                    bytes,
                    nodes: rest[2..].iter().map(|s| (*s).to_owned()).collect(),
                })
            }
            "store" => {
                let obj = rest.first().ok_or(ParseError::Usage("store <obj> [key]"))?;
                Ok(Command::Store {
                    obj: (*obj).to_owned(),
                    key: rest.get(1).map(|s| (*s).to_owned()),
                })
            }
            "load" => match rest.as_slice() {
                [key, label] => Ok(Command::Load {
                    key: (*key).to_owned(),
                    label: (*label).to_owned(),
                    node: None,
                }),
                [key, label, node] => Ok(Command::Load {
                    key: (*key).to_owned(),
                    label: (*label).to_owned(),
                    node: Some((*node).to_owned()),
                }),
                _ => Err(ParseError::Usage("load <key> <label> [node]")),
            },
            "kill" => match rest.as_slice() {
                [node] => Ok(Command::Kill {
                    node: (*node).to_owned(),
                }),
                _ => Err(ParseError::Usage("kill <node>")),
            },
            "rmnode" => match rest.as_slice() {
                [name] => Ok(Command::RmNode {
                    name: (*name).to_owned(),
                }),
                _ => Err(ParseError::Usage("rmnode <name>")),
            },
            "addnode" => match rest.as_slice() {
                [name, mflops] => {
                    let mflops: f64 = mflops
                        .parse()
                        .map_err(|_| ParseError::Usage("addnode <name> <mflops>"))?;
                    Ok(Command::AddNode {
                        name: (*name).to_owned(),
                        mflops,
                    })
                }
                _ => Err(ParseError::Usage("addnode <name> <mflops>")),
            },
            "period" | "timeout" => {
                let secs: f64 = rest
                    .first()
                    .and_then(|s| s.parse().ok())
                    .filter(|s| *s > 0.0)
                    .ok_or(ParseError::Usage("period|timeout <positive secs>"))?;
                if head.eq_ignore_ascii_case("period") {
                    Ok(Command::Period { secs })
                } else {
                    Ok(Command::Timeout { secs })
                }
            }
            "automigrate" => match rest.as_slice() {
                ["on"] => Ok(Command::Automigrate { enabled: true }),
                ["off"] => Ok(Command::Automigrate { enabled: false }),
                _ => Err(ParseError::Usage("automigrate on|off")),
            },
            "params" => match rest.as_slice() {
                [] => Ok(Command::Params { cached: false }),
                ["--cached"] => Ok(Command::Params { cached: true }),
                _ => Err(ParseError::Usage("params [--cached]")),
            },
            "stats" => Ok(Command::Stats),
            "directory" | "dir" => Ok(Command::Directory),
            "batch" => Ok(Command::Batch),
            "affinity" => match rest.as_slice() {
                [] => Ok(Command::Affinity { set: None }),
                ["on"] => Ok(Command::Affinity { set: Some(true) }),
                ["off"] => Ok(Command::Affinity { set: Some(false) }),
                _ => Err(ParseError::Usage("affinity [on|off]")),
            },
            "executor" | "exec" => Ok(Command::Executor),
            "metrics" => match rest.as_slice() {
                [] => Ok(Command::Metrics { json: false }),
                ["json"] => Ok(Command::Metrics { json: true }),
                _ => Err(ParseError::Usage("metrics [json]")),
            },
            "trace" => match rest.as_slice() {
                [] => Ok(Command::Trace { filter: None }),
                [prefix] => Ok(Command::Trace {
                    filter: Some((*prefix).to_owned()),
                }),
                _ => Err(ParseError::Usage("trace [name-prefix]")),
            },
            "log" => {
                let n = rest
                    .first()
                    .map(|s| s.parse().map_err(|_| ParseError::Usage("log [n]")))
                    .transpose()?
                    .unwrap_or(20);
                Ok(Command::Log { n })
            }
            "objects" | "objs" => Ok(Command::Objects),
            "quit" | "exit" | "q" => Ok(Command::Quit),
            other => Err(ParseError::UnknownCommand(other.to_owned())),
        }
    }
}

/// The help text shown by `help`.
pub(crate) const HELP: &str = "\
commands:
  nodes                                  list machines
  snapshot <node> [param]                system parameters of a machine
  cluster <n> [idle>=50 mem>=64 ...]     request a cluster under constraints
  arch                                   live architectures and managers
  create <class> [node]                  create an object (label printed)
  invoke <obj> <method> [i64...]         synchronous method invocation
  oinvoke <obj> <method> [i64...]        one-sided method invocation
  migrate <obj> <node>                   explicit object migration
  codebase <artifact> <bytes> <node>...  selective classloading
  store <obj> [key] / load <key> <label> [node]   persistence
  kill <node>                            fail a machine
  addnode <name> <mflops> / rmnode <name>  grow / shrink the deployment
  automigrate on|off                     toggle automatic migration
  params [--cached]                      key parameters per machine / plane stats
  period <secs> / timeout <secs>         tune monitoring / failure detection
  stats / objects / log [n]              counters / object table / events
  directory                              replicated-directory leader, term, replica lag
  batch                                  RMI coalescing-stage config and counters
  affinity [on|off]                      affinity-plane stats / toggle re-placement
  executor                               scheduling mode and work-stealing pool counters
  metrics [json]                         observability metrics (summary or JSON)
  trace [name-prefix]                    recorded spans as a tree (e.g. `trace migrate`)
  quit";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_commands() {
        assert_eq!(Command::parse("help").unwrap(), Command::Help);
        assert_eq!(Command::parse("nodes").unwrap(), Command::Nodes);
        assert_eq!(Command::parse("  LS  ").unwrap(), Command::Nodes);
        assert_eq!(Command::parse("quit").unwrap(), Command::Quit);
        assert_eq!(Command::parse("stats").unwrap(), Command::Stats);
        assert_eq!(Command::parse("directory").unwrap(), Command::Directory);
        assert_eq!(Command::parse("dir").unwrap(), Command::Directory);
        assert_eq!(Command::parse("batch").unwrap(), Command::Batch);
        assert_eq!(
            Command::parse("affinity").unwrap(),
            Command::Affinity { set: None }
        );
        assert_eq!(
            Command::parse("affinity on").unwrap(),
            Command::Affinity { set: Some(true) }
        );
        assert_eq!(
            Command::parse("affinity off").unwrap(),
            Command::Affinity { set: Some(false) }
        );
        assert!(matches!(
            Command::parse("affinity maybe"),
            Err(ParseError::Usage(_))
        ));
        assert_eq!(Command::parse("executor").unwrap(), Command::Executor);
        assert_eq!(Command::parse("exec").unwrap(), Command::Executor);
    }

    #[test]
    fn parses_observability_commands() {
        assert_eq!(
            Command::parse("metrics").unwrap(),
            Command::Metrics { json: false }
        );
        assert_eq!(
            Command::parse("metrics json").unwrap(),
            Command::Metrics { json: true }
        );
        assert!(matches!(
            Command::parse("metrics csv"),
            Err(ParseError::Usage(_))
        ));
        assert_eq!(
            Command::parse("trace").unwrap(),
            Command::Trace { filter: None }
        );
        assert_eq!(
            Command::parse("trace migrate").unwrap(),
            Command::Trace {
                filter: Some("migrate".into())
            }
        );
        assert!(matches!(
            Command::parse("trace a b"),
            Err(ParseError::Usage(_))
        ));
    }

    #[test]
    fn parses_params_command() {
        assert_eq!(
            Command::parse("params").unwrap(),
            Command::Params { cached: false }
        );
        assert_eq!(
            Command::parse("params --cached").unwrap(),
            Command::Params { cached: true }
        );
        assert!(matches!(
            Command::parse("params --cached extra"),
            Err(ParseError::Usage(_))
        ));
        assert!(matches!(
            Command::parse("params live"),
            Err(ParseError::Usage(_))
        ));
    }

    #[test]
    fn parses_cluster_with_constraints() {
        let cmd = Command::parse("cluster 4 idle>=50 name!=milena peak>10").unwrap();
        match cmd {
            Command::Cluster { n, constraints } => {
                assert_eq!(n, 4);
                assert_eq!(constraints.len(), 3);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_invocations() {
        assert_eq!(
            Command::parse("invoke c1 add 5 -3").unwrap(),
            Command::Invoke {
                obj: "c1".into(),
                method: "add".into(),
                args: vec![5, -3]
            }
        );
        assert_eq!(
            Command::parse("oinvoke c1 set 9").unwrap(),
            Command::OInvoke {
                obj: "c1".into(),
                method: "set".into(),
                args: vec![9]
            }
        );
    }

    #[test]
    fn parses_object_lifecycle_commands() {
        assert_eq!(
            Command::parse("create Counter rachel").unwrap(),
            Command::Create {
                class: "Counter".into(),
                node: Some("rachel".into())
            }
        );
        assert_eq!(
            Command::parse("migrate c1 milena").unwrap(),
            Command::Migrate {
                obj: "c1".into(),
                node: "milena".into()
            }
        );
        assert_eq!(
            Command::parse("store c1 snapshot-1").unwrap(),
            Command::Store {
                obj: "c1".into(),
                key: Some("snapshot-1".into())
            }
        );
        assert_eq!(
            Command::parse("load snapshot-1 c2 rachel").unwrap(),
            Command::Load {
                key: "snapshot-1".into(),
                label: "c2".into(),
                node: Some("rachel".into())
            }
        );
        assert_eq!(
            Command::parse("codebase blob.jar 1000 rachel milena").unwrap(),
            Command::Codebase {
                artifact: "blob.jar".into(),
                bytes: 1000,
                nodes: vec!["rachel".into(), "milena".into()]
            }
        );
    }

    #[test]
    fn rejects_bad_lines() {
        assert_eq!(Command::parse("   "), Err(ParseError::Empty));
        assert!(matches!(
            Command::parse("frobnicate"),
            Err(ParseError::UnknownCommand(_))
        ));
        assert!(matches!(
            Command::parse("cluster"),
            Err(ParseError::Usage(_))
        ));
        assert!(matches!(
            Command::parse("cluster 3 bogus~5"),
            Err(ParseError::BadConstraint(_))
        ));
        assert!(matches!(
            Command::parse("invoke c1 add NaN"),
            Err(ParseError::Usage(_))
        ));
        assert!(matches!(
            Command::parse("automigrate maybe"),
            Err(ParseError::Usage(_))
        ));
    }

    #[test]
    fn constraint_parser_handles_strings_and_numbers() {
        let mut c = JsConstraints::new();
        parse_constraint("name!=milena", &mut c).unwrap();
        parse_constraint("idle>=50", &mut c).unwrap();
        parse_constraint("swapratio<=0.3", &mut c).unwrap();
        assert_eq!(c.len(), 3);
        let mut c2 = JsConstraints::new();
        assert!(parse_constraint("idle>=fifty", &mut c2).is_err());
        assert!(parse_constraint("nonsense", &mut c2).is_err());
    }
}
