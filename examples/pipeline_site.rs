//! Locality-oriented pipeline across two sites joined by a WAN.
//!
//! The paper's core argument (§1, §3): the programmer knows which objects
//! interact heavily and should control where they live. Here a 4-stage
//! processing pipeline is mapped two ways onto a domain of two sites whose
//! clusters are joined by a wide-area link:
//!
//! * **locality-aware**: neighbouring stages co-located per site, so only
//!   one hand-off (and its reply) crosses the WAN;
//! * **scattered**: stages alternate between the sites, so every hand-off
//!   crosses it.
//!
//! Run with: `cargo run --release -p jsym-cluster --example pipeline_site`

use jsym_cluster::pipeline::{
    register_pipeline_classes, PIPELINE_ARTIFACT, PIPELINE_ARTIFACT_BYTES,
};
use jsym_core::{Deployment, JsObj, JsShell, MachineConfig, Placement, Value};
use jsym_net::{LinkClass, NodeId};
use jsym_sysmon::{LoadModel, LoadProfile, MachineSpec};

fn machine(name: &str, link: LinkClass) -> MachineConfig {
    MachineConfig {
        spec: MachineSpec::generic(name, 25.0, 256.0),
        load: LoadModel::new(LoadProfile::Idle, 0),
        link,
    }
}

/// Builds a 4-stage chain on the given nodes and runs `items` through it,
/// returning the virtual seconds taken.
fn run_chain(deployment: &Deployment, nodes: [NodeId; 4], items: usize) -> jsym_core::Result<f64> {
    let reg = deployment.register_app()?;
    let cb = reg.codebase();
    cb.add(PIPELINE_ARTIFACT, PIPELINE_ARTIFACT_BYTES);
    for n in nodes {
        cb.load_phys(n)?;
    }
    // Chain built back-to-front so every stage knows its successor.
    let mut next = None;
    let mut stages = Vec::new();
    for (k, &node) in nodes.iter().enumerate().rev() {
        let mut args = vec![Value::I64(k as i64), Value::F64(100.0)];
        if let Some(h) = next {
            args.push(Value::Handle(h));
        }
        let stage = JsObj::create(&reg, "Stage", &args, Placement::OnPhys(node), None)?;
        next = Some(stage.handle());
        stages.push(stage);
    }
    stages.reverse();

    let clock = deployment.clock().clone();
    let payload = Value::floats(vec![1.0; 100_000]); // 400 KB per item
    let t0 = clock.now();
    for _ in 0..items {
        stages[0].sinvoke("process", std::slice::from_ref(&payload))?;
    }
    let elapsed = clock.now() - t0;
    reg.unregister()?;
    Ok(elapsed)
}

fn main() -> jsym_core::Result<()> {
    let deployment = JsShell::new()
        .time_scale(5e-3)
        // Site A's cluster.
        .add_machine(machine("a0", LinkClass::Lan100))
        .add_machine(machine("a1", LinkClass::Lan100))
        // Site B's cluster.
        .add_machine(machine("b0", LinkClass::Lan100))
        .add_machine(machine("b1", LinkClass::Lan100))
        .boot();
    register_pipeline_classes(&deployment);
    let m = deployment.machines();
    // The two sites are geographically distributed: every A↔B pair crosses
    // a WAN (paper §3 — sites connect clusters "for instance via WANs").
    {
        let topo = deployment.network().topology();
        let mut topo = topo.write();
        for &a in &m[0..2] {
            for &b in &m[2..4] {
                topo.set_pair_class(a, b, LinkClass::Wan);
            }
        }
    }

    // Stages 0,1 at site A, stages 2,3 at site B: a single hand-off (and
    // its reply) crosses the WAN.
    let local = run_chain(&deployment, [m[0], m[1], m[2], m[3]], 10)?;
    println!("locality-aware mapping: {local:7.2} virtual s");

    // Alternating stages: every hand-off crosses the WAN.
    let scattered = run_chain(&deployment, [m[0], m[2], m[1], m[3]], 10)?;
    println!("scattered mapping:      {scattered:7.2} virtual s");

    println!(
        "locality advantage:     {:.2}x (controlling placement is the paper's whole point)",
        scattered / local
    );
    deployment.shutdown();
    Ok(())
}
