//! The paper's evaluation application (§6, Figure 6): master/slave matrix
//! multiplication on the heterogeneous 13-Sun testbed, run here on a
//! 6-node night-time cluster with full numeric verification.
//!
//! Run with: `cargo run --release -p jsym-cluster --example matmul_cluster`

use jsym_cluster::catalog::{testbed_machines, LoadKind};
use jsym_cluster::matmul::{
    register_matmul_classes, run_master_slave, run_sequential, MatmulConfig,
};
use jsym_core::JsShell;

fn main() -> jsym_core::Result<()> {
    const N: usize = 400;
    const NODES: usize = 6;

    let deployment = JsShell::new()
        .time_scale(2e-2) // 50x real time: per-RMI host overhead stays negligible
        .add_machines(testbed_machines(NODES, LoadKind::Night, 42))
        .boot();
    register_matmul_classes(&deployment);

    // Sequential baseline on the fastest workstation, no JavaSymphony —
    // exactly how the paper produced its one-node points.
    let fastest = deployment.pool().machine(deployment.machines()[0])?;
    let seq = run_sequential(&fastest, N);
    println!(
        "sequential on {:>8}: {seq:8.2} virtual s",
        fastest.spec().name
    );

    // The master/slave run of Figure 6 on a cluster of all six machines.
    let cluster = deployment
        .vda()
        .request_cluster(NODES, None)
        .map_err(jsym_core::JsError::from)?;
    println!(
        "cluster: {:?}",
        (0..cluster.nr_nodes())
            .map(|i| cluster.get_node(i).and_then(|n| n.name()))
            .collect::<Result<Vec<_>, _>>()
            .map_err(jsym_core::JsError::from)?
    );

    let report = run_master_slave(&deployment, &cluster, &MatmulConfig::new(N))?;
    println!(
        "distributed N={N} on {} nodes: {:8.2} virtual s (+{:.2}s setup), {} tasks, {} messages",
        report.nodes, report.virt_seconds, report.setup_seconds, report.tasks, report.messages
    );
    println!("result verified: {:?}", report.correct);
    println!(
        "speed-up vs fastest single machine: {:.2}x",
        seq / report.virt_seconds
    );

    deployment.shutdown();
    Ok(())
}
