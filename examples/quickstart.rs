//! Quickstart: boot a small JavaSymphony deployment, register an
//! application, create a remote object and talk to it all three ways.
//!
//! Run with: `cargo run -p jsym-cluster --example quickstart`

use jsym_core::testkit::register_test_classes;
use jsym_core::{JsObj, JsShell, MachineConfig, Placement, Value};

fn main() -> jsym_core::Result<()> {
    // The JS-Shell configures the node set (paper §5). Three idle
    // workstations, simulation running 1000x faster than real time.
    let deployment = JsShell::new()
        .time_scale(1e-3)
        .add_machine(MachineConfig::idle("anna", 30.0))
        .add_machine(MachineConfig::idle("bertha", 20.0))
        .add_machine(MachineConfig::idle("clara", 10.0))
        .boot();
    register_test_classes(&deployment);

    // Every JavaSymphony application first registers with the JRS (§4.1).
    let reg = deployment.register_app()?;
    println!("registered {:?} on node {}", reg.app_id(), reg.local_phys());

    // Create an object; the runtime picks the least-loaded node (§4.4).
    let counter = JsObj::create(&reg, "Counter", &[Value::I64(0)], Placement::Auto, None)?;
    println!("Counter created on {}", counter.get_node_name()?);

    // Synchronous invocation: blocks for the result (§4.5).
    let v = counter.sinvoke("add", &[Value::I64(30)])?;
    println!("sinvoke add(30)      -> {v:?}");

    // Asynchronous invocation: returns a handle immediately.
    let handle = counter.ainvoke("add", &[Value::I64(10)])?;
    println!(
        "ainvoke add(10)      -> handle ready: {}",
        handle.is_ready()
    );
    println!("handle.get_result()  -> {:?}", handle.get_result()?);

    // One-sided invocation: no result, no completion wait.
    counter.oinvoke("add", &[Value::I64(2)])?;
    println!("oinvoke add(2)       -> (fire and forget)");

    // Later reads observe all of it.
    let total = counter.sinvoke("get", &[])?;
    println!("final value          -> {total:?}");
    assert_eq!(total, Value::I64(42));

    // Persist the object, free it, resurrect it from the store (§4.7).
    let key = counter.store(Some("my-counter"))?;
    counter.free()?;
    let revived = reg.load_stored(&key, Placement::Local, None)?;
    println!(
        "revived from {key:?}  -> {:?}",
        revived.sinvoke("get", &[])?
    );

    // Applications should unregister when done (§4.1).
    reg.unregister()?;
    deployment.shutdown();
    println!("done.");
    Ok(())
}
