//! Constraint-driven automatic migration (paper §4.6, §5.2).
//!
//! Two idle workstations host a worker object each under an
//! "at least 50% idle" constraint. Twenty virtual seconds in, a (simulated)
//! user sits down at the first machine and loads it to 90%. The runtime's
//! periodic constraint check notices, and migrates the object to the other
//! machine of the same cluster — preserving locality, without any help
//! from the application.
//!
//! Run with: `cargo run -p jsym-cluster --example migration_rebalance`

use jsym_core::testkit::register_test_classes;
use jsym_core::{JsObj, JsShell, MachineConfig, Placement, Value};
use jsym_net::LinkClass;
use jsym_sysmon::{JsConstraints, LoadModel, LoadProfile, MachineSpec, SysParam};

fn main() -> jsym_core::Result<()> {
    let deployment = JsShell::new()
        .time_scale(1e-3)
        .monitor_period(2.0)
        .automigration(true, 2.0)
        .add_machine(MachineConfig {
            spec: MachineSpec::generic("overloaded-soon", 25.0, 256.0),
            load: LoadModel::new(
                LoadProfile::Spike {
                    base: 0.02,
                    level: 0.9,
                    start: 20.0,
                    end: 1e12,
                },
                1,
            ),
            link: LinkClass::Lan100,
        })
        .add_machine(MachineConfig::idle("calm", 25.0))
        .boot();
    register_test_classes(&deployment);
    let reg = deployment.register_app()?;

    // A cluster whose nodes must stay at least 50% idle.
    let mut constr = JsConstraints::new();
    constr.set(SysParam::IdlePct, ">=", 50);
    let cluster = deployment
        .vda()
        .request_cluster(2, Some(&constr))
        .map_err(jsym_core::JsError::from)?;
    println!("cluster machines: {:?}", cluster.machines());

    // Place the worker on the soon-to-be-loaded machine explicitly.
    let worker = JsObj::create(
        &reg,
        "Counter",
        &[Value::I64(7)],
        Placement::OnPhys(deployment.machines()[0]),
        None,
    )?;
    println!(
        "t={:6.1}s worker on {:?}",
        deployment.clock().now(),
        worker.get_node_name()?
    );

    // Watch the runtime react to the load spike at t=20s.
    let clock = deployment.clock().clone();
    let mut last = worker.get_location()?;
    while clock.now() < 120.0 {
        clock.sleep(5.0);
        let loc = worker.get_location()?;
        if loc != last {
            println!(
                "t={:6.1}s automatic migration: worker moved to {:?}",
                clock.now(),
                worker.get_node_name()?
            );
            last = loc;
        }
    }
    assert_eq!(
        worker.get_node_name()?,
        "calm",
        "worker should have escaped the load"
    );
    // State survived the automatic move.
    assert_eq!(worker.sinvoke("get", &[])?, Value::I64(7));
    println!("worker state intact after automatic migration.");

    reg.unregister()?;
    deployment.shutdown();
    Ok(())
}
