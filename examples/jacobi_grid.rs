//! Distributed Jacobi heat diffusion on the testbed: a 2-D plate with a hot
//! top edge, partitioned into row blocks across 4 Ultras, ghost rows
//! exchanged every iteration with asynchronous pulls + one-sided pushes.
//!
//! Run with: `cargo run --release -p jsym-cluster --example jacobi_grid`

use jsym_cluster::catalog::{testbed_machines, LoadKind};
use jsym_cluster::jacobi::{register_jacobi_classes, run_jacobi, sequential_jacobi};
use jsym_core::JsShell;

fn main() -> jsym_core::Result<()> {
    const N: usize = 48;
    const ITERS: usize = 60;

    let deployment = JsShell::new()
        .time_scale(1e-3)
        .add_machines(testbed_machines(4, LoadKind::Night, 9))
        .boot();
    register_jacobi_classes(&deployment);
    let cluster = deployment
        .vda()
        .request_cluster(4, None)
        .map_err(jsym_core::JsError::from)?;

    let report = run_jacobi(&deployment, &cluster, N, ITERS, true, true)?;
    println!(
        "jacobi {N}x{N}, {ITERS} iterations on {} nodes: {:.2} virtual s, residual {:.4}",
        cluster.nr_nodes(),
        report.virt_seconds,
        report.residual
    );

    // Spot-check against the sequential reference.
    let reference = sequential_jacobi(N, ITERS);
    let grid = report.grid.expect("collected");
    let max_err = grid
        .iter()
        .zip(&reference)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    println!("max |distributed - sequential| = {max_err:.6}");
    assert!(max_err < 1e-3);

    // A crude temperature picture: column 24, every 6th row.
    println!("temperature profile down the plate (column {}):", N / 2);
    for r in (0..N).step_by(6) {
        let t = grid[r * N + N / 2];
        let bar = "#".repeat((t / 2.0) as usize);
        println!("  row {r:>2}: {t:6.2} {bar}");
    }
    deployment.shutdown();
    Ok(())
}
